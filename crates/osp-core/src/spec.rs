//! Data-driven job specs: serializable descriptions of *what to replay*.
//!
//! The thread pool ([`ReplayPool`](crate::ReplayPool)) describes work with
//! borrowed instances and shard-local closures — perfect in-process,
//! impossible to hand to another process or machine. This module is the
//! load-bearing alternative: a job is **data**,
//!
//! * [`ScenarioSpec`] — which arrival stream to build (a generator family
//!   with its parameters, or an osp-net trace reference), resolved into
//!   the existing fused [`ArrivalSource`] streams;
//! * [`AlgorithmSpec`] — which online algorithm to run, with its
//!   parameters (the five core families here, plus the two osp-net
//!   router baselines resolvable by osp-net's `NetResolver`);
//! * [`JobSpec`] — `(scenario, algorithm, seed)`, the complete replayable
//!   unit. Same spec ⇒ same [`Outcome`], bit for bit, on
//!   any worker — the [`ArrivalSource`] determinism contract extended
//!   across process boundaries.
//!
//! Specs are turned into live sources and algorithms by a registry
//! implementing [`SpecResolver`]. [`CoreResolver`] covers everything this
//! crate defines and rejects the osp-net variants with
//! [`Error::UnsupportedSpec`]; osp-net's `NetResolver` wraps it and covers
//! the full roster. Run one job with [`run_spec`]; fan a work-list out
//! with a [`Dispatcher`](crate::engine::dispatch::Dispatcher) — threads
//! ([`SpecPool`](crate::engine::dispatch::SpecPool)) or processes
//! ([`ProcessPool`](crate::engine::dispatch::ProcessPool)) — and derive
//! per-job seeds with [`derive_seed`](crate::derive_seed) exactly as the
//! in-process lanes do.
//!
//! All spec types serialize through the vendored serde stub (enums as
//! tagged maps, see the manual impls below), which is what lets a
//! [`JobSpec`] cross a pipe today and a socket tomorrow
//! ([`wire`](crate::wire)).

use serde::{get_field, Deserialize, Error as SerdeError, Value};

use crate::algorithms::{GreedyOnline, HashRandPr, OracleOnline, RandPr, RandomAssign, TieBreak};
use crate::engine::batch::ReplayScratch;
use crate::engine::{run_source_with_scratch, Outcome};
use crate::error::Error;
use crate::gen::{
    BiregularSource, CapacityModel, FixedSizeSource, GenError, LoadModel, RandomInstanceConfig,
    UniformSource, WeightModel,
};
use crate::source::ArrivalSource;
use crate::{OnlineAlgorithm, SetId};

/// Serializable description of an online algorithm and its parameters.
///
/// Seeds are *not* part of the spec: the job's seed
/// ([`JobSpec::seed`]) is handed to the resolver at build time, so one
/// spec fans out across a seed range without rewriting.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgorithmSpec {
    /// The paper's `randPr` (§3.1): one random priority per set from
    /// `R_w`, seeded per job.
    RandPr,
    /// Distributed `randPr` via a shared `independence`-wise independent
    /// hash (§3.1); every replica with the same seed decides identically.
    HashRandPr {
        /// Independence level of the hash family (must be ≥ 1).
        independence: usize,
    },
    /// Deterministic greedy under a [`TieBreak`] ranking policy.
    Greedy {
        /// Ranking policy.
        tie_break: TieBreak,
    },
    /// The ablation baseline: a fresh coin per element.
    RandomAssign,
    /// Scripted oracle committing to a fixed target packing.
    Oracle {
        /// The sets the oracle fights for.
        target: Vec<SetId>,
    },
    /// osp-net's FIFO tail-drop router baseline (resolvable by
    /// `osp_net::spec::NetResolver`, not by [`CoreResolver`]).
    TailDrop,
    /// osp-net's uniform random-drop router baseline (resolvable by
    /// `osp_net::spec::NetResolver`, not by [`CoreResolver`]).
    RandomDrop,
}

impl AlgorithmSpec {
    /// A short stable label for tables and logs (e.g. `"randPr"`,
    /// `"greedy[weight]"`).
    pub fn label(&self) -> String {
        match self {
            AlgorithmSpec::RandPr => "randPr".into(),
            AlgorithmSpec::HashRandPr { independence } => format!("hashPr{independence}"),
            AlgorithmSpec::Greedy { tie_break } => {
                format!("greedy[{}]", tie_break_tag(*tie_break))
            }
            AlgorithmSpec::RandomAssign => "random-assign".into(),
            AlgorithmSpec::Oracle { .. } => "oracle".into(),
            AlgorithmSpec::TailDrop => "tail-drop".into(),
            AlgorithmSpec::RandomDrop => "random-drop".into(),
        }
    }
}

/// Serializable description of an arrival stream: a generator family with
/// its parameters, or an osp-net trace reference. The job seed picks the
/// concrete stream out of the family.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioSpec {
    /// [`UniformSource`]: the general random family of
    /// [`random_instance`](crate::gen::random_instance), streamed fused.
    Uniform(RandomInstanceConfig),
    /// [`BiregularSource`]: exactly size-`k` sets and load-`σ` elements
    /// (the Theorem 5 instance class).
    Biregular {
        /// Number of sets `m`.
        num_sets: usize,
        /// Exact set size `k`.
        set_size: u32,
        /// Exact element load `σ`.
        load: u32,
    },
    /// [`FixedSizeSource`]: size-`k` sets with Zipf-skewed element loads.
    FixedSize {
        /// Number of sets `m`.
        num_sets: usize,
        /// Exact set size `k`.
        set_size: u32,
        /// Number of elements drawn (empty ones are skipped).
        num_elements: usize,
        /// Zipf skew of the per-set element draws.
        skew: f64,
    },
    /// An osp-net video-trace reference: a multiplexed GOP-patterned
    /// packet trace (standard GOP), reduced to OSP arrivals slot by slot.
    /// Resolvable by `osp_net::spec::NetResolver`, not by
    /// [`CoreResolver`].
    VideoTrace {
        /// Parallel video sources multiplexed onto the link.
        sources: usize,
        /// Frames emitted per source.
        frames_per_source: usize,
        /// Slots between consecutive frames of one source.
        frame_interval: u32,
        /// Link capacity (packets per slot).
        capacity: u32,
        /// Per-packet jitter window (0 = in-order).
        jitter: u32,
    },
}

impl ScenarioSpec {
    /// A short stable label for tables and logs.
    pub fn label(&self) -> String {
        match self {
            ScenarioSpec::Uniform(cfg) => {
                format!(
                    "uniform m={} n={} σmax={}",
                    cfg.num_sets,
                    cfg.num_elements,
                    cfg.load.max()
                )
            }
            ScenarioSpec::Biregular {
                num_sets,
                set_size,
                load,
            } => format!("biregular m={num_sets} k={set_size} σ={load}"),
            ScenarioSpec::FixedSize {
                num_sets,
                set_size,
                num_elements,
                skew,
            } => format!("fixed-size m={num_sets} k={set_size} n={num_elements} skew={skew}"),
            ScenarioSpec::VideoTrace {
                sources,
                frames_per_source,
                ..
            } => format!("video-trace sources={sources} frames={frames_per_source}"),
        }
    }
}

/// One complete replayable unit: which stream, which algorithm, which
/// seed. Everything a worker needs; nothing borrowed.
///
/// The seed feeds *both* factories (scenario and algorithm), exactly as
/// the in-process [`SourceJob`](crate::SourceJob) lane does, and is fixed
/// by the scheduler before fan-out — typically with
/// [`derive_seed`](crate::derive_seed) — so no job's randomness depends on
/// which worker runs it.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JobSpec {
    /// The arrival stream to build.
    pub scenario: ScenarioSpec,
    /// The algorithm to run over it.
    pub algorithm: AlgorithmSpec,
    /// Seed handed to both factories.
    pub seed: u64,
}

/// A registry turning specs into live sources and algorithms.
///
/// Implementations must be *pure*: the same `(spec, seed)` must always
/// build the same source/algorithm, because that is what makes a
/// [`JobSpec`] mean the same thing on every thread, process and machine.
/// Resolvers that do not know a variant return
/// [`Error::UnsupportedSpec`] rather than guessing.
pub trait SpecResolver {
    /// Builds the algorithm `spec` describes, seeding it with `seed`.
    fn algorithm(&self, spec: &AlgorithmSpec, seed: u64)
        -> Result<Box<dyn OnlineAlgorithm>, Error>;

    /// Builds the arrival stream `spec` describes, seeding it with `seed`.
    fn scenario(&self, spec: &ScenarioSpec, seed: u64) -> Result<Box<dyn ArrivalSource>, Error>;

    /// The wire tags of every spec variant this resolver can build —
    /// scenario tags plus algorithm tags, as they appear in the JSON
    /// encoding (`"uniform"`, `"rand_pr"`, …). A socket worker announces
    /// this in its [`Hello`](crate::wire::Hello) handshake so a
    /// dispatcher can fail fast on a fleet that cannot run its roster.
    /// The default is empty (announce nothing).
    fn roster(&self) -> Vec<String> {
        Vec::new()
    }
}

/// The core registry: resolves every spec variant defined by this crate's
/// own algorithms and generators, and rejects the osp-net variants
/// ([`AlgorithmSpec::TailDrop`], [`AlgorithmSpec::RandomDrop`],
/// [`ScenarioSpec::VideoTrace`]) with [`Error::UnsupportedSpec`] — use
/// `osp_net::spec::NetResolver` for the full roster.
///
/// # Examples
///
/// ```
/// use osp_core::gen::RandomInstanceConfig;
/// use osp_core::spec::{run_spec, AlgorithmSpec, CoreResolver, JobSpec, ScenarioSpec};
///
/// let job = JobSpec {
///     scenario: ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(20, 50, 3)),
///     algorithm: AlgorithmSpec::RandPr,
///     seed: 7,
/// };
/// let a = run_spec(&job, &CoreResolver)?;
/// let b = run_spec(&job, &CoreResolver)?;
/// assert_eq!(a, b); // same spec ⇒ bit-identical outcome
/// # Ok::<(), osp_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreResolver;

impl SpecResolver for CoreResolver {
    fn algorithm(
        &self,
        spec: &AlgorithmSpec,
        seed: u64,
    ) -> Result<Box<dyn OnlineAlgorithm>, Error> {
        match spec {
            AlgorithmSpec::RandPr => Ok(Box::new(RandPr::from_seed(seed))),
            AlgorithmSpec::HashRandPr { independence } => {
                if *independence == 0 {
                    return Err(Error::InvalidSpec(
                        "hash_pr independence must be at least 1".into(),
                    ));
                }
                Ok(Box::new(HashRandPr::new(*independence, seed)))
            }
            AlgorithmSpec::Greedy { tie_break } => Ok(Box::new(GreedyOnline::new(*tie_break))),
            AlgorithmSpec::RandomAssign => Ok(Box::new(RandomAssign::from_seed(seed))),
            AlgorithmSpec::Oracle { target } => Ok(Box::new(OracleOnline::new(target.clone()))),
            AlgorithmSpec::TailDrop | AlgorithmSpec::RandomDrop => Err(Error::UnsupportedSpec(
                format!("{} (an osp-net algorithm; use NetResolver)", spec.label()),
            )),
        }
    }

    fn scenario(&self, spec: &ScenarioSpec, seed: u64) -> Result<Box<dyn ArrivalSource>, Error> {
        match spec {
            ScenarioSpec::Uniform(cfg) => {
                Ok(Box::new(UniformSource::new(cfg, seed).map_err(gen_err)?))
            }
            ScenarioSpec::Biregular {
                num_sets,
                set_size,
                load,
            } => Ok(Box::new(
                BiregularSource::new(*num_sets, *set_size, *load, seed).map_err(gen_err)?,
            )),
            ScenarioSpec::FixedSize {
                num_sets,
                set_size,
                num_elements,
                skew,
            } => Ok(Box::new(
                FixedSizeSource::new(*num_sets, *set_size, *num_elements, *skew, seed)
                    .map_err(gen_err)?,
            )),
            ScenarioSpec::VideoTrace { .. } => Err(Error::UnsupportedSpec(format!(
                "{} (an osp-net scenario; use NetResolver)",
                spec.label()
            ))),
        }
    }

    fn roster(&self) -> Vec<String> {
        [
            "uniform",
            "biregular",
            "fixed_size",
            "rand_pr",
            "hash_pr",
            "greedy",
            "random_assign",
            "oracle",
        ]
        .map(String::from)
        .to_vec()
    }
}

fn gen_err(e: GenError) -> Error {
    Error::InvalidSpec(e.to_string())
}

/// Resolves and replays one [`JobSpec`] — the sequential reference every
/// dispatcher must match bit-for-bit.
///
/// # Errors
///
/// [`Error::UnsupportedSpec`] / [`Error::InvalidSpec`] if the resolver
/// cannot build the job, or the engine's usual invalid-decision errors.
pub fn run_spec<R: SpecResolver + ?Sized>(job: &JobSpec, resolver: &R) -> Result<Outcome, Error> {
    let mut scratch = ReplayScratch::new();
    run_spec_with_scratch(job, resolver, &mut scratch)
}

/// [`run_spec`] with caller-provided scratch, so consecutive jobs on one
/// worker reuse the engine's buffers (the worker loop and the dispatcher
/// shards call this).
///
/// # Errors
///
/// Same contract as [`run_spec`].
pub fn run_spec_with_scratch<R: SpecResolver + ?Sized>(
    job: &JobSpec,
    resolver: &R,
    scratch: &mut ReplayScratch,
) -> Result<Outcome, Error> {
    let mut source = resolver.scenario(&job.scenario, job.seed)?;
    let mut algorithm = resolver.algorithm(&job.algorithm, job.seed)?;
    run_source_with_scratch(&mut source, algorithm.as_mut(), scratch)
}

// ---------------------------------------------------------------------------
// Serde: enums as tagged maps (the vendored derive handles structs only).
// ---------------------------------------------------------------------------

fn tagged(tag_key: &str, tag: &str, fields: Vec<(&str, Value)>) -> Value {
    let mut map = vec![(tag_key.to_string(), Value::Str(tag.to_string()))];
    map.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    Value::Map(map)
}

fn read_tag(value: &Value, tag_key: &str) -> Result<String, SerdeError> {
    String::from_value(get_field(value, tag_key)?)
}

fn field<T: serde::Deserialize>(value: &Value, name: &str) -> Result<T, SerdeError> {
    T::from_value(get_field(value, name)?)
}

fn tie_break_tag(t: TieBreak) -> &'static str {
    match t {
        TieBreak::ByWeight => "weight",
        TieBreak::ByFewestRemaining => "fewest-remaining",
        TieBreak::ByMostProgress => "most-progress",
        TieBreak::ByDensity => "density",
        TieBreak::ByIndex => "index",
    }
}

impl serde::Serialize for TieBreak {
    fn to_value(&self) -> Value {
        Value::Str(tie_break_tag(*self).to_string())
    }
}

impl serde::Deserialize for TieBreak {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        match String::from_value(value)?.as_str() {
            "weight" => Ok(TieBreak::ByWeight),
            "fewest-remaining" => Ok(TieBreak::ByFewestRemaining),
            "most-progress" => Ok(TieBreak::ByMostProgress),
            "density" => Ok(TieBreak::ByDensity),
            "index" => Ok(TieBreak::ByIndex),
            other => Err(SerdeError::msg(format!("unknown tie-break `{other}`"))),
        }
    }
}

impl serde::Serialize for LoadModel {
    fn to_value(&self) -> Value {
        match *self {
            LoadModel::Fixed(k) => tagged("model", "fixed", vec![("value", k.to_value())]),
            LoadModel::Uniform { lo, hi } => tagged(
                "model",
                "uniform",
                vec![("lo", lo.to_value()), ("hi", hi.to_value())],
            ),
        }
    }
}

impl serde::Deserialize for LoadModel {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        match read_tag(value, "model")?.as_str() {
            "fixed" => Ok(LoadModel::Fixed(field(value, "value")?)),
            "uniform" => Ok(LoadModel::Uniform {
                lo: field(value, "lo")?,
                hi: field(value, "hi")?,
            }),
            other => Err(SerdeError::msg(format!("unknown load model `{other}`"))),
        }
    }
}

impl serde::Serialize for WeightModel {
    fn to_value(&self) -> Value {
        match *self {
            WeightModel::Unit => tagged("model", "unit", vec![]),
            WeightModel::Uniform { lo, hi } => tagged(
                "model",
                "uniform",
                vec![("lo", lo.to_value()), ("hi", hi.to_value())],
            ),
            WeightModel::Zipf { exponent } => {
                tagged("model", "zipf", vec![("exponent", exponent.to_value())])
            }
        }
    }
}

impl serde::Deserialize for WeightModel {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        match read_tag(value, "model")?.as_str() {
            "unit" => Ok(WeightModel::Unit),
            "uniform" => Ok(WeightModel::Uniform {
                lo: field(value, "lo")?,
                hi: field(value, "hi")?,
            }),
            "zipf" => Ok(WeightModel::Zipf {
                exponent: field(value, "exponent")?,
            }),
            other => Err(SerdeError::msg(format!("unknown weight model `{other}`"))),
        }
    }
}

impl serde::Serialize for CapacityModel {
    fn to_value(&self) -> Value {
        match *self {
            CapacityModel::Unit => tagged("model", "unit", vec![]),
            CapacityModel::Fixed(b) => tagged("model", "fixed", vec![("value", b.to_value())]),
            CapacityModel::Uniform { lo, hi } => tagged(
                "model",
                "uniform",
                vec![("lo", lo.to_value()), ("hi", hi.to_value())],
            ),
        }
    }
}

impl serde::Deserialize for CapacityModel {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        match read_tag(value, "model")?.as_str() {
            "unit" => Ok(CapacityModel::Unit),
            "fixed" => Ok(CapacityModel::Fixed(field(value, "value")?)),
            "uniform" => Ok(CapacityModel::Uniform {
                lo: field(value, "lo")?,
                hi: field(value, "hi")?,
            }),
            other => Err(SerdeError::msg(format!("unknown capacity model `{other}`"))),
        }
    }
}

impl serde::Serialize for AlgorithmSpec {
    fn to_value(&self) -> Value {
        match self {
            AlgorithmSpec::RandPr => tagged("algorithm", "rand_pr", vec![]),
            AlgorithmSpec::HashRandPr { independence } => tagged(
                "algorithm",
                "hash_pr",
                vec![("independence", independence.to_value())],
            ),
            AlgorithmSpec::Greedy { tie_break } => tagged(
                "algorithm",
                "greedy",
                vec![("tie_break", tie_break.to_value())],
            ),
            AlgorithmSpec::RandomAssign => tagged("algorithm", "random_assign", vec![]),
            AlgorithmSpec::Oracle { target } => {
                tagged("algorithm", "oracle", vec![("target", target.to_value())])
            }
            AlgorithmSpec::TailDrop => tagged("algorithm", "tail_drop", vec![]),
            AlgorithmSpec::RandomDrop => tagged("algorithm", "random_drop", vec![]),
        }
    }
}

impl serde::Deserialize for AlgorithmSpec {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        match read_tag(value, "algorithm")?.as_str() {
            "rand_pr" => Ok(AlgorithmSpec::RandPr),
            "hash_pr" => Ok(AlgorithmSpec::HashRandPr {
                independence: field(value, "independence")?,
            }),
            "greedy" => Ok(AlgorithmSpec::Greedy {
                tie_break: field(value, "tie_break")?,
            }),
            "random_assign" => Ok(AlgorithmSpec::RandomAssign),
            "oracle" => Ok(AlgorithmSpec::Oracle {
                target: field(value, "target")?,
            }),
            "tail_drop" => Ok(AlgorithmSpec::TailDrop),
            "random_drop" => Ok(AlgorithmSpec::RandomDrop),
            other => Err(SerdeError::msg(format!("unknown algorithm spec `{other}`"))),
        }
    }
}

impl serde::Serialize for ScenarioSpec {
    fn to_value(&self) -> Value {
        match self {
            ScenarioSpec::Uniform(cfg) => {
                tagged("scenario", "uniform", vec![("config", cfg.to_value())])
            }
            ScenarioSpec::Biregular {
                num_sets,
                set_size,
                load,
            } => tagged(
                "scenario",
                "biregular",
                vec![
                    ("num_sets", num_sets.to_value()),
                    ("set_size", set_size.to_value()),
                    ("load", load.to_value()),
                ],
            ),
            ScenarioSpec::FixedSize {
                num_sets,
                set_size,
                num_elements,
                skew,
            } => tagged(
                "scenario",
                "fixed_size",
                vec![
                    ("num_sets", num_sets.to_value()),
                    ("set_size", set_size.to_value()),
                    ("num_elements", num_elements.to_value()),
                    ("skew", skew.to_value()),
                ],
            ),
            ScenarioSpec::VideoTrace {
                sources,
                frames_per_source,
                frame_interval,
                capacity,
                jitter,
            } => tagged(
                "scenario",
                "video_trace",
                vec![
                    ("sources", sources.to_value()),
                    ("frames_per_source", frames_per_source.to_value()),
                    ("frame_interval", frame_interval.to_value()),
                    ("capacity", capacity.to_value()),
                    ("jitter", jitter.to_value()),
                ],
            ),
        }
    }
}

impl serde::Deserialize for ScenarioSpec {
    fn from_value(value: &Value) -> Result<Self, SerdeError> {
        match read_tag(value, "scenario")?.as_str() {
            "uniform" => Ok(ScenarioSpec::Uniform(field(value, "config")?)),
            "biregular" => Ok(ScenarioSpec::Biregular {
                num_sets: field(value, "num_sets")?,
                set_size: field(value, "set_size")?,
                load: field(value, "load")?,
            }),
            "fixed_size" => Ok(ScenarioSpec::FixedSize {
                num_sets: field(value, "num_sets")?,
                set_size: field(value, "set_size")?,
                num_elements: field(value, "num_elements")?,
                skew: field(value, "skew")?,
            }),
            "video_trace" => Ok(ScenarioSpec::VideoTrace {
                sources: field(value, "sources")?,
                frames_per_source: field(value, "frames_per_source")?,
                frame_interval: field(value, "frame_interval")?,
                capacity: field(value, "capacity")?,
                jitter: field(value, "jitter")?,
            }),
            other => Err(SerdeError::msg(format!("unknown scenario spec `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_source;

    fn uniform_job(seed: u64) -> JobSpec {
        JobSpec {
            scenario: ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(20, 50, 3)),
            algorithm: AlgorithmSpec::RandPr,
            seed,
        }
    }

    #[test]
    fn specs_round_trip_through_json() {
        let cases = vec![
            uniform_job(7),
            JobSpec {
                scenario: ScenarioSpec::Uniform(RandomInstanceConfig {
                    num_sets: 40,
                    num_elements: 100,
                    load: LoadModel::Uniform { lo: 1, hi: 6 },
                    weights: WeightModel::Zipf { exponent: 1.0 },
                    capacities: CapacityModel::Uniform { lo: 1, hi: 3 },
                }),
                algorithm: AlgorithmSpec::HashRandPr { independence: 8 },
                seed: 9,
            },
            JobSpec {
                scenario: ScenarioSpec::Biregular {
                    num_sets: 24,
                    set_size: 3,
                    load: 6,
                },
                algorithm: AlgorithmSpec::Greedy {
                    tie_break: TieBreak::ByDensity,
                },
                seed: 1,
            },
            JobSpec {
                scenario: ScenarioSpec::FixedSize {
                    num_sets: 40,
                    set_size: 4,
                    num_elements: 90,
                    skew: 1.2,
                },
                algorithm: AlgorithmSpec::Oracle {
                    target: vec![SetId(1), SetId(4)],
                },
                seed: 2,
            },
            JobSpec {
                scenario: ScenarioSpec::VideoTrace {
                    sources: 4,
                    frames_per_source: 30,
                    frame_interval: 8,
                    capacity: 4,
                    jitter: 2,
                },
                algorithm: AlgorithmSpec::TailDrop,
                seed: 0,
            },
        ];
        for job in cases {
            let json = serde_json::to_string(&job).unwrap();
            let back: JobSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, job, "via {json}");
        }
    }

    #[test]
    fn unknown_tags_are_rejected() {
        assert!(serde_json::from_str::<AlgorithmSpec>(r#"{"algorithm":"quantum"}"#).is_err());
        assert!(serde_json::from_str::<ScenarioSpec>(r#"{"scenario":"trust_me"}"#).is_err());
        assert!(serde_json::from_str::<TieBreak>(r#""by-vibes""#).is_err());
        assert!(serde_json::from_str::<LoadModel>(r#"{"model":"gaussian"}"#).is_err());
    }

    #[test]
    fn core_resolver_matches_direct_construction() {
        let cfg = RandomInstanceConfig::unweighted(30, 80, 4);
        let job = JobSpec {
            scenario: ScenarioSpec::Uniform(cfg),
            algorithm: AlgorithmSpec::HashRandPr { independence: 8 },
            seed: 42,
        };
        let via_spec = run_spec(&job, &CoreResolver).unwrap();
        let direct = run_source(
            &mut UniformSource::new(&cfg, 42).unwrap(),
            &mut HashRandPr::new(8, 42),
        )
        .unwrap();
        assert_eq!(via_spec, direct);
    }

    #[test]
    fn core_resolver_rejects_net_specs() {
        assert!(matches!(
            CoreResolver.algorithm(&AlgorithmSpec::TailDrop, 0),
            Err(Error::UnsupportedSpec(_))
        ));
        assert!(matches!(
            CoreResolver.algorithm(&AlgorithmSpec::RandomDrop, 0),
            Err(Error::UnsupportedSpec(_))
        ));
        let video = ScenarioSpec::VideoTrace {
            sources: 1,
            frames_per_source: 1,
            frame_interval: 1,
            capacity: 1,
            jitter: 0,
        };
        assert!(matches!(
            CoreResolver.scenario(&video, 0),
            Err(Error::UnsupportedSpec(_))
        ));
    }

    #[test]
    fn invalid_parameters_surface_as_invalid_spec() {
        let job = JobSpec {
            scenario: ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(3, 10, 5)),
            algorithm: AlgorithmSpec::RandPr,
            seed: 0,
        };
        assert!(matches!(
            run_spec(&job, &CoreResolver),
            Err(Error::InvalidSpec(_))
        ));
        assert!(matches!(
            CoreResolver.algorithm(&AlgorithmSpec::HashRandPr { independence: 0 }, 0),
            Err(Error::InvalidSpec(_))
        ));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AlgorithmSpec::RandPr.label(), "randPr");
        assert_eq!(
            AlgorithmSpec::HashRandPr { independence: 8 }.label(),
            "hashPr8"
        );
        assert_eq!(
            AlgorithmSpec::Greedy {
                tie_break: TieBreak::ByWeight
            }
            .label(),
            "greedy[weight]"
        );
        assert_eq!(
            ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(2, 3, 1)).label(),
            "uniform m=2 n=3 σmax=1"
        );
    }
}
