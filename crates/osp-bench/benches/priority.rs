//! Criterion bench: priority machinery — the per-packet hot path of the
//! distributed implementation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use osp_core::priority::Rw;
use osp_gf::hash::PolyHash;
use osp_gf::Gf;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_priority(c: &mut Criterion) {
    let mut group = c.benchmark_group("priority");

    group.bench_function("rw_sample_w3.5", |b| {
        let rw = Rw::new(3.5).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        b.iter(|| rw.sample(&mut rng))
    });

    for independence in [2usize, 8, 64] {
        group.bench_function(format!("poly_hash_eval_{independence}wise"), |b| {
            let h = PolyHash::new(independence, 1);
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                h.eval(black_box(x))
            })
        });
        // The precomputed-powers reference, kept benched so the fast
        // path's margin is tracked PR-over-PR.
        group.bench_function(format!("poly_hash_eval_naive_{independence}wise"), |b| {
            let h = PolyHash::new(independence, 1);
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_add(1);
                h.eval_naive(black_box(x))
            })
        });
    }

    group.bench_function("alias_table_sample_4096", |b| {
        let weights: Vec<f64> = (0..4096).map(|j| ((j + 1) as f64).powf(-1.2)).collect();
        let table = osp_stats::AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| black_box(table.sample(&mut rng)))
    });

    group.bench_function("hash_priority_pipeline", |b| {
        // hash -> unit interval -> R_w quantile: one distributed priority.
        let h = PolyHash::new(8, 2);
        let rw = Rw::new(2.0).unwrap();
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            rw.from_uniform(h.unit(black_box(x)))
        })
    });

    group.bench_function("gf_mul_gf256", |b| {
        let f = Gf::new(256).unwrap();
        let mut x = 1u64;
        b.iter(|| {
            x = (x % 255) + 1;
            f.mul(black_box(x), black_box(193))
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_priority
}
criterion_main!(benches);
