//! Criterion bench: adversarial construction and generator costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use osp_adversary::gadget_lb::gadget_lower_bound;
use osp_adversary::weak::weak_lower_bound;
use osp_core::gen::{biregular_instance, random_instance, RandomInstanceConfig};
use osp_net::trace::{video_trace, VideoTraceConfig};
use osp_net::trace_to_instance;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_constructions(c: &mut Criterion) {
    let mut group = c.benchmark_group("construction");

    for ell in [3u64, 4, 5] {
        group.bench_with_input(BenchmarkId::new("gadget_lb", ell), &ell, |b, &ell| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = StdRng::seed_from_u64(seed);
                gadget_lower_bound(ell, &mut rng)
                    .unwrap()
                    .instance
                    .num_elements()
            })
        });
    }

    for t in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::new("weak_lb", t), &t, |b, &t| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = StdRng::seed_from_u64(seed);
                weak_lower_bound(t, &mut rng)
                    .unwrap()
                    .instance
                    .num_elements()
            })
        });
    }

    group.bench_function("biregular_m60_k5_s4", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            biregular_instance(60, 5, 4, &mut rng)
                .unwrap()
                .num_elements()
        })
    });

    group.bench_function("random_instance_m200_n2000_s8", |b| {
        let cfg = RandomInstanceConfig::unweighted(200, 2000, 8);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            random_instance(&cfg, &mut rng).unwrap().num_elements()
        })
    });

    group.bench_function("video_trace_and_mapping", |b| {
        let cfg = VideoTraceConfig {
            sources: 8,
            frames_per_source: 60,
            gop: osp_net::GopConfig::standard(),
            frame_interval: 8,
            capacity: 4,
            jitter: 0,
        };
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            let trace = video_trace(&cfg, &mut rng);
            trace_to_instance(&trace).instance.num_elements()
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_constructions
}
criterion_main!(benches);
