//! Criterion bench: online engine throughput per algorithm.
//!
//! Measures full instance replays (decisions per second is the router's
//! forwarding-decision budget in the video scenario).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use osp_core::algorithms::{GreedyOnline, HashRandPr, RandPr, TieBreak};
use osp_core::gen::{random_instance, RandomInstanceConfig};
use osp_core::{derive_seed, run, Instance, ReplayPool};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload(m: usize, n: usize, sigma: u32) -> Instance {
    let mut rng = StdRng::seed_from_u64(42);
    random_instance(&RandomInstanceConfig::unweighted(m, n, sigma), &mut rng)
        .expect("feasible bench workload")
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_run");
    for (m, n, sigma) in [
        (100usize, 1_000usize, 4u32),
        (500, 5_000, 8),
        (2_000, 20_000, 16),
    ] {
        let inst = workload(m, n, sigma);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(
            BenchmarkId::new("randPr", format!("m{m}_n{n}_s{sigma}")),
            &inst,
            |b, inst| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    run(inst, &mut RandPr::from_seed(seed)).unwrap().benefit()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hashPr8", format!("m{m}_n{n}_s{sigma}")),
            &inst,
            |b, inst| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    run(inst, &mut HashRandPr::new(8, seed)).unwrap().benefit()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("greedy_fewest_remaining", format!("m{m}_n{n}_s{sigma}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    run(inst, &mut GreedyOnline::new(TieBreak::ByFewestRemaining))
                        .unwrap()
                        .benefit()
                })
            },
        );
        // Batch path: 32 randPr replays per iteration through the pool
        // (scratch-reused shards), the unit the experiment harness spends.
        group.bench_with_input(
            BenchmarkId::new("randPr_batch32", format!("m{m}_n{n}_s{sigma}")),
            &inst,
            |b, inst| {
                let pool = ReplayPool::from_env();
                let mut round = 0u64;
                b.iter(|| {
                    round += 1;
                    let seeds: Vec<u64> = (0..32).map(|i| derive_seed(round, i)).collect();
                    pool.run_seeds(inst, &seeds, &|s| Box::new(RandPr::from_seed(s)))
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_engine
}
criterion_main!(benches);
