//! Criterion bench: offline solver ladder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use osp_core::gen::{random_instance, RandomInstanceConfig};
use osp_core::Instance;
use osp_opt::dual::density_dual_bound;
use osp_opt::greedy::{greedy_offline, GreedyOrder};
use osp_opt::mwu::fractional_packing;
use osp_opt::{branch_and_bound, BnbConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn workload(m: usize, n: usize, sigma: u32, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    random_instance(&RandomInstanceConfig::unweighted(m, n, sigma), &mut rng)
        .expect("feasible bench workload")
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers");

    for (m, n) in [(20usize, 40usize), (30, 60), (40, 80)] {
        let inst = workload(m, n, 3, 7);
        group.bench_with_input(
            BenchmarkId::new("branch_and_bound", format!("m{m}")),
            &inst,
            |b, inst| b.iter(|| branch_and_bound(inst, &BnbConfig::default()).value),
        );
    }

    let big = workload(400, 1200, 6, 11);
    group.bench_function("greedy_offline_m400", |b| {
        b.iter(|| greedy_offline(&big, GreedyOrder::ByDensity).0)
    });
    group.bench_function("density_dual_m400", |b| b.iter(|| density_dual_bound(&big)));
    group.bench_function("mwu_eps0.1_m400", |b| {
        b.iter(|| fractional_packing(&big, 0.1).dual)
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_solvers
}
criterion_main!(benches);
