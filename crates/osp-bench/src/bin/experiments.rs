//! The experiment runner binary.
//!
//! ```text
//! experiments [--quick] [--seed N] [--json DIR] [ids... | all]
//! ```
//!
//! Prints each experiment's report as markdown (the tables recorded in
//! EXPERIMENTS.md) and optionally dumps the reports as JSON artifacts
//! named `BENCH_<id>.json` (the tracked-baseline naming from ROADMAP.md).

use std::io::Write as _;
use std::process::ExitCode;

use osp_bench::{experiments, Scale};

fn main() -> ExitCode {
    let mut scale = Scale::Full;
    let mut seed = 20_100_217u64; // the paper's date, for flavor
    let mut json_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage("--seed needs an integer"),
            },
            "--json" => match args.next() {
                Some(dir) => json_dir = Some(dir),
                None => return usage("--json needs a directory"),
            },
            "--help" | "-h" => return usage(""),
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag {other}"));
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = experiments::ALL.iter().map(|s| s.to_string()).collect();
    }

    if let Some(dir) = &json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let mut failures = 0u32;
    for id in &ids {
        let started = std::time::Instant::now();
        match experiments::run(id, scale, seed) {
            Some(report) => {
                println!("{}", report.to_markdown());
                println!(
                    "_[{id}] completed in {:.1}s_\n",
                    started.elapsed().as_secs_f64()
                );
                if let Some(dir) = &json_dir {
                    let path = format!("{dir}/BENCH_{id}.json");
                    match std::fs::File::create(&path).map(|mut f| {
                        serde_json::to_string_pretty(&report).map(|s| f.write_all(s.as_bytes()))
                    }) {
                        Ok(Ok(Ok(()))) => {}
                        _ => eprintln!("warning: failed to write {path}"),
                    }
                }
            }
            None => {
                eprintln!(
                    "unknown experiment id: {id} (known: {:?})",
                    experiments::ALL
                );
                failures += 1;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: experiments [--quick] [--seed N] [--json DIR] [ids... | all]\n\
         known ids: {:?}",
        experiments::ALL
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
