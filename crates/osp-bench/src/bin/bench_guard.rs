//! CI bench-guard: compares freshly generated `BENCH_*.json` run(s)
//! against the committed baseline and exits non-zero on any identity
//! regression.
//!
//! ```sh
//! bench_guard <committed-baseline.json> <current.json> [more-runs.json...]
//! ```
//!
//! See [`osp_bench::guard`] for the exact rules: boolean identity columns
//! must read `true` in every run, required sections (`distributed`,
//! `socket`, `kernel`) must be present with rows, and the machine-portable
//! algorithmic speedups (`poly_hash_eval`, `weighted sampling`, `kernel`;
//! committed value ≥ 2×) must stay at ≥ 0.9× their committed value in the
//! best run.

use std::process::ExitCode;

use osp_bench::guard;
use osp_bench::report::Report;

fn load(path: &str) -> Result<Report, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, candidate_paths @ ..] = args.as_slice() else {
        eprintln!("usage: bench_guard <committed-baseline.json> <current.json> [more.json...]");
        return ExitCode::FAILURE;
    };
    if candidate_paths.is_empty() {
        eprintln!("usage: bench_guard <committed-baseline.json> <current.json> [more.json...]");
        return ExitCode::FAILURE;
    }
    let baseline = match load(baseline_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_guard: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut candidates = Vec::new();
    for path in candidate_paths {
        match load(path) {
            Ok(r) => candidates.push(r),
            Err(e) => {
                eprintln!("bench_guard: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let violations = guard::check_all(&baseline, &candidates);
    if violations.is_empty() {
        println!(
            "bench_guard: OK — {} run(s) vs {} (identity columns true; guarded speedups ≥ {}× \
             baseline)",
            candidates.len(),
            baseline_path,
            guard::SPEEDUP_FLOOR
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("bench_guard: {} violation(s):", violations.len());
        for v in &violations {
            eprintln!("  - {v}");
        }
        ExitCode::FAILURE
    }
}
