//! # osp-bench — the experiment harness
//!
//! Regenerates every experiment of the reproduction (see DESIGN.md §5 for
//! the experiment index): one module per paper result under
//! [`experiments`], shared measurement machinery in [`ratio`], and
//! serializable reports in [`report`].
//!
//! Run everything:
//!
//! ```text
//! cargo run -p osp-bench --release --bin experiments -- all
//! cargo run -p osp-bench --release --bin experiments -- --quick thm1 fig1
//! ```
//!
//! Each experiment prints markdown tables (recorded in EXPERIMENTS.md) and
//! can additionally dump JSON artifacts with `--json <dir>`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod guard;
pub mod pool;
pub mod ratio;
pub mod report;

/// How big an experiment should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small parameters for smoke tests and CI (seconds).
    Quick,
    /// The full parameter sweeps recorded in EXPERIMENTS.md (minutes).
    Full,
}

impl Scale {
    /// Picks `q` under [`Scale::Quick`] and `f` under [`Scale::Full`].
    pub fn pick<T>(self, q: T, f: T) -> T {
        match self {
            Scale::Quick => q,
            Scale::Full => f,
        }
    }
}
