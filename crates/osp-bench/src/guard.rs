//! Bench-guard: regression checks over `BENCH_*.json` reports.
//!
//! CI regenerates `BENCH_replay.json` on every run and compares it against
//! the committed baseline with two rules:
//!
//! 1. **Identity booleans** — every cell under a `bit-identical` or
//!    `agree` header, in *every* candidate report, must read `true`. These
//!    encode correctness (batch replay ≡ sequential, fast hash ≡ naive,
//!    osp-worker processes ≡ threads) and must never regress, on any
//!    machine. Sections that carry such claims and could be skipped
//!    silently (`REQUIRED_TABLES`: the `distributed` section, which
//!    needs the `osp-worker` binary built, the `socket` section,
//!    which needs a loopback worker fleet, the `kernel` section,
//!    which carries the batched-kernel and prologue identity claims,
//!    and the `pipeline` section, which carries the pipelined-session
//!    and sharded-decide identity claims) must additionally be
//!    *present with rows* in every candidate once the baseline has
//!    them — an absent table would otherwise pass vacuously.
//! 2. **Algorithmic speedups** — for tables whose comparison is
//!    single-threaded and machine-portable (`poly_hash_eval`,
//!    `weighted sampling`, `streaming`, `kernel`), each `speedup` / `mem ratio`
//!    cell must stay at ≥ [`SPEEDUP_FLOOR`] × its committed value,
//!    matched by table title and row identity (the first column). The
//!    `streaming` table's `mem ratio` (materialized instance bytes over
//!    fused-source resident bytes) is the constant-memory claim of the
//!    streaming ingestion path: it is deterministic up to the seed
//!    sequence, so a regression means the source genuinely started
//!    holding more state. Two deliberate exclusions keep the check
//!    meaningful rather than noisy:
//!    * committed ratios below [`RATIO_GUARD_MIN`] are informational only —
//!      a 1.3× micro-ratio is dominated by loop overhead and alignment
//!      luck, so "regressions" there are indistinguishable from jitter;
//!    * thread-scaling tables (`engine_run`, `replay_throughput`) are
//!      exempt — their speedups measure the host's core count, which CI
//!      runners and the baseline machine don't share — but their identity
//!      booleans are still enforced by rule 1.
//!
//! When several candidate reports are supplied (CI measures twice), a
//! ratio cell passes if its **best** candidate meets the floor — the
//! standard min-noise estimator for wall-clock ratios — while rule 1 must
//! hold in every candidate.
//!
//! Rows or tables present only in the baseline are skipped (the
//! quick-scale CI grid is a subset of the committed full-scale grid).

use crate::report::Report;

/// A guarded speedup may regress to this fraction of its committed value
/// before the guard fails (absorbs benign machine-to-machine jitter).
pub const SPEEDUP_FLOOR: f64 = 0.9;

/// Committed ratios below this are informational, not guarded.
pub const RATIO_GUARD_MIN: f64 = 2.0;

/// Table-title prefixes whose ratio columns are machine-portable
/// (single-threaded algorithmic ratios, or deterministic memory ratios)
/// and therefore ratio-guarded. The `kernel` table's `speedup` column is
/// the single-threaded eval_batch-over-scalar ratio (guarded); its
/// `begin speedup` column measures the prologue's thread fan-out, which
/// is a machine property — exempt by header name, like `wall speedup`.
const RATIO_GUARDED_TABLES: [&str; 4] =
    ["poly_hash_eval", "weighted sampling", "streaming", "kernel"];

/// Table-title prefixes that must be *present with rows* in every
/// candidate whenever the committed baseline has them. The `distributed`
/// section encodes the process-boundary identity claim (osp-worker
/// outcomes ≡ threads ≡ sequential) and the `socket` section the
/// network-boundary claim (a loopback `osp-worker --listen` fleet —
/// including one killed mid-batch by its fault plan — ≡ sequential); a
/// run that silently skipped either — e.g. because the worker binary was
/// not built or the fleet failed to come up — would otherwise pass
/// rule 1 vacuously. Their wall-clock columns stay unguarded (the
/// thread/worker counts are machine properties); only presence and the
/// identity booleans are enforced. The `kernel` section is required too:
/// it carries the batched-kernel ≡ scalar and sharded-prologue ≡ serial
/// identity claims plus the ratio-guarded eval_batch speedup, so a run
/// that dropped the table would quietly un-guard all three. The
/// `pipeline` section is required for the same reason: its rows claim
/// the pipelined session and the sharded decision kernel are
/// bit-identical to sequential `run_source` (walls stay unguarded —
/// the thread count is a machine property, and `OSP_REPLAY_THREADS=1`
/// legitimately selects the serial fallback).
const REQUIRED_TABLES: [&str; 4] = ["distributed", "socket", "kernel", "pipeline"];

/// Headers holding boolean identity verdicts.
const IDENTITY_HEADERS: [&str; 2] = ["bit-identical", "agree"];

/// Headers holding guarded ratios. (`unroll gain` is deliberately *not*
/// guarded: below the unroll dispatch threshold both legs run the same
/// code, so that ratio is ~1.0 and noise-dominated — informational only.
/// The streaming table's `wall speedup` is likewise unguarded by name:
/// it mixes allocator behavior into the ratio, so only the deterministic
/// `mem ratio` cell carries the streaming guarantee.)
const RATIO_HEADERS: [&str; 2] = ["speedup", "mem ratio"];

/// Parses a `"1.36×"` (or plain `"1.36"`) speedup cell.
fn parse_ratio(cell: &str) -> Option<f64> {
    cell.trim().trim_end_matches('×').trim().parse::<f64>().ok()
}

/// Checks the candidate reports against `baseline`; returns every
/// violation found (empty = pass).
pub fn check_all(baseline: &Report, candidates: &[Report]) -> Vec<String> {
    let mut violations = Vec::new();

    // Rule 1: identity booleans, in every candidate.
    for (i, current) in candidates.iter().enumerate() {
        for table in &current.tables {
            for (col, header) in table.headers.iter().enumerate() {
                if !IDENTITY_HEADERS.contains(&header.as_str()) {
                    continue;
                }
                for row in &table.rows {
                    if row[col] != "true" {
                        violations.push(format!(
                            "[candidate {i}] [{}] row '{}': identity column '{}' is '{}', \
                             expected 'true'",
                            table.title, row[0], header, row[col]
                        ));
                    }
                }
            }
        }
    }

    // Rule 1b: sections whose *absence* would make rule 1 vacuous must be
    // present (with rows) in every candidate once the baseline has them.
    for prefix in REQUIRED_TABLES {
        let required = baseline
            .tables
            .iter()
            .any(|t| t.title.starts_with(prefix) && !t.rows.is_empty());
        if !required {
            continue;
        }
        for (i, current) in candidates.iter().enumerate() {
            let present = current
                .tables
                .iter()
                .any(|t| t.title.starts_with(prefix) && !t.rows.is_empty());
            if !present {
                violations.push(format!(
                    "[candidate {i}] required section '{prefix}' is missing or empty \
                     (the baseline has it; was osp-worker built?)"
                ));
            }
        }
    }

    // Rule 2: machine-portable speedups vs the committed baseline, taking
    // the best candidate per cell.
    for base_table in &baseline.tables {
        if !RATIO_GUARDED_TABLES
            .iter()
            .any(|p| base_table.title.starts_with(p))
        {
            continue;
        }
        for (base_col, header) in base_table.headers.iter().enumerate() {
            if !RATIO_HEADERS.contains(&header.as_str()) {
                continue;
            }
            for base_row in &base_table.rows {
                let Some(base) = parse_ratio(&base_row[base_col]) else {
                    continue;
                };
                if base < RATIO_GUARD_MIN {
                    continue;
                }
                // Collect this cell from every candidate that has it.
                let measured: Vec<f64> = candidates
                    .iter()
                    .filter_map(|current| {
                        let table = current
                            .tables
                            .iter()
                            .find(|t| t.title == base_table.title)?;
                        let col = table.headers.iter().position(|h| h == header)?;
                        let row = table.rows.iter().find(|r| r[0] == base_row[0])?;
                        parse_ratio(&row[col])
                    })
                    .collect();
                let Some(best) = measured.iter().copied().fold(None, |acc: Option<f64>, v| {
                    Some(acc.map_or(v, |a| a.max(v)))
                }) else {
                    continue; // cell absent from every candidate: skipped
                };
                if best < SPEEDUP_FLOOR * base {
                    violations.push(format!(
                        "[{}] row '{}': '{}' regressed to {best:.2}× \
                         (best of {} run(s); < {SPEEDUP_FLOOR} × committed {base:.2}×)",
                        base_table.title,
                        base_row[0],
                        header,
                        measured.len(),
                    ));
                }
            }
        }
    }

    violations
}

/// Single-candidate convenience wrapper around [`check_all`].
pub fn check(baseline: &Report, current: &Report) -> Vec<String> {
    check_all(baseline, std::slice::from_ref(current))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::NamedTable;

    fn report_with(title: &str, headers: &[&str], rows: Vec<Vec<&str>>) -> Report {
        let mut r = Report::new("replay", "t", "c");
        let mut t = NamedTable::new(title, headers);
        for row in rows {
            t.row(row.into_iter().map(String::from).collect());
        }
        r.table(t);
        r
    }

    #[test]
    fn passes_when_identical() {
        let base = report_with(
            "poly_hash_eval: x",
            &["independence", "speedup", "agree"],
            vec![vec!["8-wise", "3.44×", "true"]],
        );
        assert!(check(&base, &base.clone()).is_empty());
    }

    #[test]
    fn false_identity_fails_in_any_candidate() {
        let good = report_with(
            "engine_run: x",
            &["workload", "bit-identical"],
            vec![vec!["w", "true"]],
        );
        let bad = report_with(
            "engine_run: x",
            &["workload", "bit-identical"],
            vec![vec!["w", "false"]],
        );
        let v = check_all(&good, &[good.clone(), bad]);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("bit-identical"));
    }

    #[test]
    fn speedup_regression_fails_only_in_ratio_guarded_tables() {
        let mk = |title: &str, speedup: &str| {
            report_with(title, &["id", "speedup"], vec![vec!["row", speedup]])
        };
        // 3.0× committed, 1.0× now: fails in a hash table...
        let v = check(
            &mk("poly_hash_eval: x", "3.00×"),
            &mk("poly_hash_eval: x", "1.00×"),
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("regressed"));
        // ...but within the floor passes.
        assert!(check(
            &mk("poly_hash_eval: x", "3.00×"),
            &mk("poly_hash_eval: x", "2.75×"),
        )
        .is_empty());
        // Thread-scaling tables are exempt from the ratio rule.
        assert!(check(&mk("engine_run: x", "8.00×"), &mk("engine_run: x", "0.90×"),).is_empty());
        // Small committed ratios are informational, not guarded.
        assert!(check(
            &mk("poly_hash_eval: x", "1.40×"),
            &mk("poly_hash_eval: x", "0.80×"),
        )
        .is_empty());
    }

    #[test]
    fn streaming_mem_ratio_is_guarded_and_identity_enforced() {
        let mk = |ratio: &str, identical: &str| {
            report_with(
                "streaming: fused UniformSource vs materialize-then-replay",
                &["workload", "wall speedup", "mem ratio", "bit-identical"],
                vec![vec!["m=100 n=1000 σ=4", "9.40×", ratio, identical]],
            )
        };
        // A mem-ratio collapse (the source started holding O(n) state)
        // fails the guard...
        let v = check(&mk("10.50×", "true"), &mk("1.20×", "true"));
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("mem ratio"));
        // ...jitter within the floor passes...
        assert!(check(&mk("10.50×", "true"), &mk("10.10×", "true")).is_empty());
        // ...and a streaming-vs-materialized outcome divergence is an
        // identity violation regardless of the ratios.
        let v = check(&mk("10.50×", "true"), &mk("10.50×", "false"));
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("bit-identical"));
        // The `wall speedup` column is informational by name even when the
        // committed value clears RATIO_GUARD_MIN: the candidate above
        // keeps the same 9.40× committed wall speedup cell-for-cell, so a
        // guarded reading of it would also have passed — pin the exemption
        // with a collapsed candidate instead.
        let slow = report_with(
            "streaming: fused UniformSource vs materialize-then-replay",
            &["workload", "wall speedup", "mem ratio", "bit-identical"],
            vec![vec!["m=100 n=1000 σ=4", "0.50×", "10.50×", "true"]],
        );
        assert!(check(&mk("10.50×", "true"), &slow).is_empty());
    }

    #[test]
    fn distributed_identity_is_enforced_and_presence_required() {
        let mk = |identical: &str| {
            report_with(
                "distributed: JobSpec fan-out — sequential vs threads vs osp-worker processes",
                &["workload × algorithm", "speedup", "bit-identical"],
                vec![vec!["m=200 n=2000 σ=6 × randPr", "0.80×", identical]],
            )
        };
        // Identity booleans of the distributed section are rule-1 checked…
        let v = check(&mk("true"), &mk("false"));
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("bit-identical"));
        // …its speedup is machine-bound and deliberately unguarded…
        let base = mk("true");
        let slower = report_with(
            "distributed: JobSpec fan-out — sequential vs threads vs osp-worker processes",
            &["workload × algorithm", "speedup", "bit-identical"],
            vec![vec!["m=200 n=2000 σ=6 × randPr", "0.10×", "true"]],
        );
        assert!(check(&base, &slower).is_empty());
        // …and a candidate missing the section entirely (or with zero
        // rows) fails, because the identity claim would pass vacuously.
        let absent = report_with("engine_run: x", &["workload", "bit-identical"], vec![]);
        let v = check(&base, &absent);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("required section 'distributed'"));
        let empty = report_with(
            "distributed: JobSpec fan-out — sequential vs threads vs osp-worker processes",
            &["workload × algorithm", "speedup", "bit-identical"],
            vec![],
        );
        let v = check(&base, &empty);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("missing or empty"));
        // Baselines without the section (pre-PR-5 reports, other
        // experiment ids) require nothing.
        assert!(check(&absent, &absent.clone()).is_empty());
    }

    #[test]
    fn socket_section_is_required_once_the_baseline_has_it() {
        let mk = |identical: &str| {
            report_with(
                "socket: JobSpec fan-out — sequential vs a loopback osp-worker fleet",
                &["workload × algorithm", "fleet", "bit-identical"],
                vec![vec!["m=200 n=2000 σ=6 × randPr", "3", identical]],
            )
        };
        // Identity booleans are rule-1 checked like every other section…
        let v = check(&mk("true"), &mk("false"));
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("bit-identical"));
        // …and a candidate that silently dropped the section (fleet never
        // came up) fails the presence rule rather than passing vacuously.
        let absent = report_with("engine_run: x", &["workload", "bit-identical"], vec![]);
        let v = check(&mk("true"), &absent);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("required section 'socket'"));
        // Baselines without the section require nothing.
        assert!(check(&absent, &absent.clone()).is_empty());
    }

    #[test]
    fn kernel_speedup_guarded_but_begin_speedup_exempt() {
        let mk = |speedup: &str, begin: &str, identical: &str| {
            report_with(
                "kernel: transposed eval_batch vs scalar eval; sharded prologue vs serial begin",
                &["m", "speedup", "begin speedup", "bit-identical"],
                vec![vec!["1000000", speedup, begin, identical]],
            )
        };
        // The eval_batch-over-scalar ratio is single-threaded and guarded:
        // a collapse below the floor fails…
        let v = check(&mk("2.20×", "1.00×", "true"), &mk("1.10×", "1.00×", "true"));
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("speedup"));
        // …jitter within the floor passes…
        assert!(check(&mk("2.20×", "1.00×", "true"), &mk("2.05×", "1.00×", "true")).is_empty());
        // …the prologue's wall ratio is machine-bound: even a committed
        // multi-core 4.00× may read ~0.9× on a 1-core runner without
        // failing (exempt by the `begin speedup` header name)…
        assert!(check(&mk("2.20×", "4.00×", "true"), &mk("2.20×", "0.90×", "true")).is_empty());
        // …and the identity cell (batch ≡ scalar AND serial ≡ sharded
        // tables) is rule-1 enforced regardless of the ratios.
        let v = check(
            &mk("2.20×", "1.00×", "true"),
            &mk("2.20×", "1.00×", "false"),
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("bit-identical"));
    }

    #[test]
    fn kernel_section_is_required_once_the_baseline_has_it() {
        let base = report_with(
            "kernel: transposed eval_batch vs scalar eval; sharded prologue vs serial begin",
            &["m", "speedup", "bit-identical"],
            vec![vec!["10000", "2.50×", "true"]],
        );
        // A candidate that dropped the section would silently un-guard
        // the kernel identity and speedup claims — presence is required.
        let absent = report_with("engine_run: x", &["workload", "bit-identical"], vec![]);
        let v = check(&base, &absent);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("required section 'kernel'"));
        // Baselines without the section require nothing.
        assert!(check(&absent, &absent.clone()).is_empty());
    }

    #[test]
    fn pipeline_section_identity_enforced_presence_required_walls_unguarded() {
        let mk = |speedup: &str, identical: &str| {
            report_with(
                "pipeline: one streamed replay — serial vs pipelined session vs pipelined + \
                 sharded decide",
                &[
                    "workload × algorithm",
                    "speedup",
                    "threads",
                    "bit-identical",
                ],
                vec![vec![
                    "m=500 n=1000000 σ=4 × randPr",
                    speedup,
                    "8",
                    identical,
                ]],
            )
        };
        // A pipelined or sharded outcome diverging from sequential
        // run_source is a rule-1 violation…
        let v = check(&mk("1.80×", "true"), &mk("1.80×", "false"));
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("bit-identical"));
        // …the wall speedup is machine-bound (1-core runners and the
        // OSP_REPLAY_THREADS=1 serial-fallback lane both read ~1×) and
        // deliberately unguarded…
        assert!(check(&mk("1.80×", "true"), &mk("0.40×", "true")).is_empty());
        // …and a candidate that silently dropped the section fails the
        // presence rule rather than passing vacuously.
        let absent = report_with("engine_run: x", &["workload", "bit-identical"], vec![]);
        let v = check(&mk("1.80×", "true"), &absent);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("required section 'pipeline'"));
        // Baselines without the section require nothing.
        assert!(check(&absent, &absent.clone()).is_empty());
    }

    #[test]
    fn best_of_candidates_wins() {
        let base = report_with(
            "poly_hash_eval: x",
            &["id", "speedup"],
            vec![vec!["8-wise", "3.60×"]],
        );
        let noisy = report_with(
            "poly_hash_eval: x",
            &["id", "speedup"],
            vec![vec!["8-wise", "3.00×"]],
        );
        let quiet = report_with(
            "poly_hash_eval: x",
            &["id", "speedup"],
            vec![vec!["8-wise", "3.55×"]],
        );
        // The noisy run alone fails; paired with the quiet run it passes.
        assert_eq!(check(&base, &noisy).len(), 1);
        assert!(check_all(&base, &[noisy, quiet]).is_empty());
    }

    #[test]
    fn missing_rows_and_tables_are_skipped() {
        let base = report_with(
            "poly_hash_eval: x",
            &["id", "speedup"],
            vec![vec!["64-wise", "2.72×"]],
        );
        let cur = report_with(
            "poly_hash_eval: x",
            &["id", "speedup"],
            vec![vec!["128-wise", "0.10×"]],
        );
        assert!(check(&base, &cur).is_empty());
        let other = report_with("weighted sampling: y", &["id", "speedup"], vec![]);
        assert!(check(&other, &base).is_empty());
    }

    #[test]
    fn ratio_parsing() {
        assert_eq!(parse_ratio("1.36×"), Some(1.36));
        assert_eq!(parse_ratio(" 2.0 "), Some(2.0));
        assert_eq!(parse_ratio("n/a"), None);
    }
}
