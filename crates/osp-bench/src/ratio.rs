//! Shared measurement machinery: `opt` brackets and algorithm trials.

use osp_core::{Instance, OnlineAlgorithm};
use osp_opt::dual::density_dual_bound;
use osp_opt::greedy::best_greedy;
use osp_opt::mwu::fractional_packing;
use osp_opt::{branch_and_bound, BnbConfig};
use osp_stats::{ConfidenceInterval, SeedSequence, Summary};

/// A certified bracket `[lower, upper]` around `w(opt)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptBracket {
    /// Value of a concrete feasible packing (`≤ w(opt)`).
    pub lower: f64,
    /// A certified upper bound (`≥ w(opt)`).
    pub upper: f64,
    /// Whether `lower == upper == w(opt)` was proven.
    pub exact: bool,
}

impl OptBracket {
    /// Relative width of the bracket (0 when exact).
    pub fn gap(&self) -> f64 {
        if self.upper <= 0.0 {
            0.0
        } else {
            (self.upper - self.lower) / self.upper
        }
    }
}

/// Brackets `w(opt)`: exact branch-and-bound when the instance is small
/// enough (or the budget suffices), otherwise
/// `[best greedy, min(density dual, MWU dual)]`.
pub fn opt_bracket(instance: &Instance) -> OptBracket {
    // Try exact search with a budget scaled to instance size.
    let budget = if instance.num_sets() <= 60 {
        2_000_000
    } else if instance.num_sets() <= 200 {
        400_000
    } else {
        0
    };
    if budget > 0 {
        let sol = branch_and_bound(instance, &BnbConfig { max_nodes: budget });
        if sol.optimal {
            return OptBracket {
                lower: sol.value,
                upper: sol.value,
                exact: true,
            };
        }
    }
    let (greedy, _) = best_greedy(instance);
    let dual = density_dual_bound(instance);
    let mwu = fractional_packing(instance, 0.1).dual;
    OptBracket {
        lower: greedy,
        upper: dual.min(mwu).max(greedy),
        exact: false,
    }
}

/// The measured performance of one algorithm over repeated trials.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgMeasurement {
    /// Algorithm display name (taken from the first trial instance).
    pub name: String,
    /// Mean benefit across trials.
    pub mean: f64,
    /// 95% confidence interval for the mean.
    pub ci: ConfidenceInterval,
    /// Number of trials.
    pub trials: u32,
}

/// Runs `trials` independent executions of the algorithm produced by
/// `factory(seed)` and summarizes the benefit.
///
/// Trials fan out across the shared [`crate::pool`] replay pool; the
/// per-trial seeds are drawn from `seeds` up front in the same order the
/// old sequential loop drew them, so measurements are bit-identical to
/// sequential replay (and to this function's pre-batching behavior).
///
/// # Panics
///
/// Panics if a trial returns an engine error (the built-in algorithms
/// never emit invalid decisions) or if `trials == 0`.
pub fn measure<F>(
    instance: &Instance,
    factory: F,
    trials: u32,
    seeds: &mut SeedSequence,
) -> AlgMeasurement
where
    F: Fn(u64) -> Box<dyn OnlineAlgorithm> + Sync,
{
    assert!(trials >= 1, "need at least one trial");
    let trial_seeds = crate::pool::draw_seeds(seeds, trials as usize);
    let name = factory(trial_seeds[0]).name();
    let outcomes = crate::pool::pool().run_seeds(instance, &trial_seeds, &factory);
    let mut summary = Summary::new();
    for outcome in &outcomes {
        summary.add(outcome.benefit());
    }
    AlgMeasurement {
        name,
        mean: summary.mean(),
        ci: summary.confidence_interval(0.95),
        trials,
    }
}

/// Conservative measured competitive ratio: certified `opt` upper bound
/// over the *lower* end of the benefit CI — an upper estimate of the true
/// ratio, so "measured ≤ theoretical bound" statements stay honest.
pub fn conservative_ratio(bracket: &OptBracket, m: &AlgMeasurement) -> f64 {
    let denom = m.ci.lo.max(1e-12);
    bracket.upper / denom
}

/// Point-estimate ratio `opt_lower / mean` — a lower estimate of the true
/// ratio (useful for lower-bound experiments).
pub fn witnessed_ratio(bracket: &OptBracket, m: &AlgMeasurement) -> f64 {
    if m.mean <= 0.0 {
        f64::INFINITY
    } else {
        bracket.lower / m.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osp_core::algorithms::{GreedyOnline, RandPr, TieBreak};
    use osp_core::gen::{random_instance, RandomInstanceConfig};
    use osp_core::InstanceBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_instance() -> Instance {
        let mut rng = StdRng::seed_from_u64(0);
        random_instance(&RandomInstanceConfig::unweighted(20, 40, 3), &mut rng).unwrap()
    }

    #[test]
    fn bracket_is_exact_on_small_instances() {
        let inst = small_instance();
        let b = opt_bracket(&inst);
        assert!(b.exact);
        assert_eq!(b.lower, b.upper);
        assert_eq!(b.gap(), 0.0);
    }

    #[test]
    fn bracket_orders_hold_on_large_instances() {
        let mut rng = StdRng::seed_from_u64(1);
        let inst =
            random_instance(&RandomInstanceConfig::unweighted(400, 900, 4), &mut rng).unwrap();
        let b = opt_bracket(&inst);
        assert!(b.lower <= b.upper);
        assert!(b.lower > 0.0);
    }

    #[test]
    fn measure_randomized_and_deterministic() {
        let inst = small_instance();
        let mut seeds = SeedSequence::new(7);
        let randpr = measure(&inst, |s| Box::new(RandPr::from_seed(s)), 50, &mut seeds);
        assert_eq!(randpr.name, "randPr");
        assert!(randpr.mean > 0.0);
        assert!(randpr.ci.lo <= randpr.mean && randpr.mean <= randpr.ci.hi);

        let greedy = measure(
            &inst,
            |_| Box::new(GreedyOnline::new(TieBreak::ByWeight)),
            3,
            &mut seeds,
        );
        // Deterministic: zero-width CI.
        assert!(greedy.ci.width() < 1e-12);
    }

    #[test]
    fn ratios_are_ordered() {
        let inst = small_instance();
        let b = opt_bracket(&inst);
        let mut seeds = SeedSequence::new(9);
        let m = measure(&inst, |s| Box::new(RandPr::from_seed(s)), 100, &mut seeds);
        assert!(witnessed_ratio(&b, &m) <= conservative_ratio(&b, &m) + 1e-9);
    }

    #[test]
    fn infinite_ratio_when_algorithm_scores_zero() {
        // A star where greedy-by-index always completes something, but a
        // measurement of zero-benefit is representable.
        let mut b = InstanceBuilder::new();
        let s = b.add_set(1.0, 1);
        b.add_element(1, &[s]);
        let inst = b.build().unwrap();
        let bracket = opt_bracket(&inst);
        let fake = AlgMeasurement {
            name: "null".into(),
            mean: 0.0,
            ci: ConfidenceInterval {
                lo: 0.0,
                hi: 0.0,
                level: 0.95,
            },
            trials: 1,
        };
        assert_eq!(witnessed_ratio(&bracket, &fake), f64::INFINITY);
    }
}
