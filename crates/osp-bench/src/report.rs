//! Serializable experiment reports rendered as markdown.

use serde::{Deserialize, Serialize};

/// One named table of an experiment report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NamedTable {
    /// Table caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl NamedTable {
    /// Creates an empty table with the given caption and headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        NamedTable {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    fn to_markdown(&self) -> String {
        let mut t =
            osp_stats::Table::new(&self.headers.iter().map(|s| s.as_str()).collect::<Vec<_>>());
        for r in &self.rows {
            t.row_owned(r.clone());
        }
        format!("**{}**\n\n{}", self.title, t)
    }
}

/// A complete experiment report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    /// Experiment id (e.g. `"thm1"`).
    pub id: String,
    /// Human title (e.g. `"Theorem 1 upper bound"`).
    pub title: String,
    /// What the paper claims and what we check — shown above the tables.
    pub claim: String,
    /// Result tables.
    pub tables: Vec<NamedTable>,
    /// Free-form observations (verdicts, caveats).
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, claim: &str) -> Self {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            claim: claim.to_string(),
            tables: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a finished table.
    pub fn table(&mut self, table: NamedTable) -> &mut Self {
        self.tables.push(table);
        self
    }

    /// Adds a note line.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Renders the whole report as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## [{}] {}\n\n*{}*\n\n", self.id, self.title, self.claim);
        for t in &self.tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("- {n}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_round_trip() {
        let mut r = Report::new("x", "Example", "claim text");
        let mut t = NamedTable::new("numbers", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        r.table(t);
        r.note("looks good");
        let md = r.to_markdown();
        assert!(md.contains("## [x] Example"));
        assert!(md.contains("**numbers**"));
        assert!(md.contains("| 1"));
        assert!(md.contains("- looks good"));
    }

    #[test]
    fn json_serializable() {
        let mut r = Report::new("y", "T", "c");
        r.table(NamedTable::new("t", &["h"]));
        let j = serde_json::to_string(&r).unwrap();
        let back: Report = serde_json::from_str(&j).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn row_width_checked() {
        NamedTable::new("t", &["a", "b"]).row(vec!["1".into()]);
    }
}
