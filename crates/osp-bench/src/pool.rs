//! The experiments' bridge to the core batch-replay engine.
//!
//! Every experiment follows the same discipline so parallel replay cannot
//! change any number:
//!
//! 1. draw all seeds *sequentially* from the experiment's
//!    [`SeedSequence`] — in exactly the order the old one-at-a-time loops
//!    drew them, so reports stay comparable PR-over-PR;
//! 2. fan the `(instance × seed × algorithm)` work-list across the shared
//!    [`ReplayPool`];
//! 3. consume the outcomes in job order.
//!
//! Shard count comes from `OSP_REPLAY_SHARDS` (default: all cores); the
//! `tests/batch_equivalence.rs` conformance suite proves outcomes are
//! bit-identical at any shard count.

pub use osp_core::{ReplayJob, ReplayPool};
use osp_stats::SeedSequence;

/// The pool all experiments share: sized by `OSP_REPLAY_SHARDS`, falling
/// back to the machine's available parallelism.
pub fn pool() -> ReplayPool {
    ReplayPool::from_env()
}

/// Draws `n` seeds from the sequence — the batch-side equivalent of `n`
/// sequential `next_seed()` calls, so downstream draws stay aligned with
/// the pre-batching harness.
pub fn draw_seeds(seeds: &mut SeedSequence, n: usize) -> Vec<u64> {
    (0..n).map(|_| seeds.next_seed()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draw_seeds_matches_sequential_draws() {
        let mut a = SeedSequence::new(3);
        let batch = draw_seeds(&mut a, 5);
        let mut b = SeedSequence::new(3);
        let seq: Vec<u64> = (0..5).map(|_| b.next_seed()).collect();
        assert_eq!(batch, seq);
        // The sequence advances identically.
        assert_eq!(a.next_seed(), b.next_seed());
    }

    #[test]
    fn pool_respects_env_override() {
        // from_env is exercised indirectly; at minimum it must build.
        assert!(pool().shards() >= 1);
    }
}
