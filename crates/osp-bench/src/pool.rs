//! The experiments' bridge to the core batch-replay engine.
//!
//! Every experiment follows the same discipline so parallel replay cannot
//! change any number:
//!
//! 1. draw all seeds *sequentially* from the experiment's
//!    [`SeedSequence`] — in exactly the order the old one-at-a-time loops
//!    drew them, so reports stay comparable PR-over-PR;
//! 2. fan the `(instance × seed × algorithm)` work-list across the shared
//!    [`ReplayPool`];
//! 3. consume the outcomes in job order.
//!
//! Shard count comes from `OSP_REPLAY_SHARDS` (default: all cores); the
//! `tests/batch_equivalence.rs` conformance suite proves outcomes are
//! bit-identical at any shard count.
//!
//! Work that is expressible as data-driven
//! [`JobSpec`](osp_core::JobSpec)s (rather than closures over bespoke
//! instances) can additionally choose its backend:
//! [`dispatcher`] returns threads or `osp-worker` processes depending on
//! `OSP_DISPATCH`, behind the common [`Dispatcher`] contract — same
//! seeds, same order, bit-identical outcomes either way (pinned by
//! `tests/process_pool_conformance.rs`).

pub use osp_core::{Dispatcher, ProcessPool, ReplayJob, ReplayPool, SocketPool, SpecPool};
use osp_net::NetResolver;
use osp_stats::SeedSequence;

/// The pool all experiments share: sized by `OSP_REPLAY_SHARDS`, falling
/// back to the machine's available parallelism.
pub fn pool() -> ReplayPool {
    ReplayPool::from_env()
}

/// The spec-job backend the experiments share, selected by
/// `OSP_DISPATCH` (case-insensitive, surrounding whitespace ignored):
///
/// * unset or `threads` — [`SpecPool`] over the shared [`pool`], resolving
///   specs in-process through the full workspace registry
///   ([`NetResolver`]);
/// * `processes` — a [`ProcessPool`] of `osp-worker` children sized by
///   `OSP_WORKERS` (build the binary first:
///   `cargo build --release --bin osp-worker`);
/// * `socket` (or `sockets`) — a [`SocketPool`] over the fleet named by
///   `OSP_WORKER_ADDRS` (comma-separated `host:port` / `uds:/path`
///   addresses of running `osp-worker --listen` processes).
///
/// Unrecognized values fall back to threads with a note on stderr — the
/// same hardened junk-tolerant policy as
/// [`env_parallelism`](osp_core::env_parallelism), because outcomes are
/// bit-identical on every backend, so an experiment never blocks on a
/// typo. Likewise `processes` without a locatable worker binary and
/// `socket` without a reachable `OSP_WORKER_ADDRS` fall back to threads.
pub fn dispatcher() -> Box<dyn Dispatcher> {
    dispatcher_for(std::env::var("OSP_DISPATCH").ok().as_deref())
}

/// Which backend an `OSP_DISPATCH` value selects — the pure, unit-tested
/// parse core of [`dispatcher`] (no environment, no I/O).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchChoice {
    /// In-process thread shards (the default).
    Threads,
    /// `osp-worker` child processes over pipes.
    Processes,
    /// A socket fleet from `OSP_WORKER_ADDRS`.
    Socket,
    /// Junk: fall back to threads, with a note naming the raw value.
    Unknown,
}

impl DispatchChoice {
    /// Parses a raw `OSP_DISPATCH` value: trimmed, case-insensitive;
    /// `None`/empty means [`Threads`](Self::Threads).
    pub fn parse(raw: Option<&str>) -> DispatchChoice {
        let Some(raw) = raw else {
            return DispatchChoice::Threads;
        };
        match raw.trim().to_ascii_lowercase().as_str() {
            "" | "threads" | "thread" => DispatchChoice::Threads,
            "processes" | "process" => DispatchChoice::Processes,
            "socket" | "sockets" => DispatchChoice::Socket,
            _ => DispatchChoice::Unknown,
        }
    }
}

/// Backend construction behind [`dispatcher`]: `choice` is the raw
/// `OSP_DISPATCH` content (or `None` if unset).
fn dispatcher_for(choice: Option<&str>) -> Box<dyn Dispatcher> {
    let threads = || -> Box<dyn Dispatcher> { Box::new(SpecPool::new(pool(), NetResolver)) };
    match DispatchChoice::parse(choice) {
        DispatchChoice::Threads => threads(),
        DispatchChoice::Processes => match ProcessPool::from_env() {
            Ok(pool) => Box::new(pool),
            Err(e) => {
                eprintln!("OSP_DISPATCH=processes unavailable ({e}); falling back to threads");
                threads()
            }
        },
        DispatchChoice::Socket => match SocketPool::from_env() {
            Ok(pool) => Box::new(pool),
            Err(e) => {
                eprintln!("OSP_DISPATCH=socket unavailable ({e}); falling back to threads");
                threads()
            }
        },
        DispatchChoice::Unknown => {
            eprintln!(
                "OSP_DISPATCH={} is not a backend (want threads, processes or socket); \
                 falling back to threads",
                choice.unwrap_or_default()
            );
            threads()
        }
    }
}

/// Draws `n` seeds from the sequence — the batch-side equivalent of `n`
/// sequential `next_seed()` calls, so downstream draws stay aligned with
/// the pre-batching harness.
pub fn draw_seeds(seeds: &mut SeedSequence, n: usize) -> Vec<u64> {
    (0..n).map(|_| seeds.next_seed()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draw_seeds_matches_sequential_draws() {
        let mut a = SeedSequence::new(3);
        let batch = draw_seeds(&mut a, 5);
        let mut b = SeedSequence::new(3);
        let seq: Vec<u64> = (0..5).map(|_| b.next_seed()).collect();
        assert_eq!(batch, seq);
        // The sequence advances identically.
        assert_eq!(a.next_seed(), b.next_seed());
    }

    #[test]
    fn pool_respects_env_override() {
        // from_env is exercised indirectly; at minimum it must build.
        assert!(pool().shards() >= 1);
    }

    #[test]
    fn dispatch_choice_parses_case_insensitively() {
        // The pure parse core: no env, no I/O, every policy branch.
        assert_eq!(DispatchChoice::parse(None), DispatchChoice::Threads);
        assert_eq!(DispatchChoice::parse(Some("")), DispatchChoice::Threads);
        assert_eq!(
            DispatchChoice::parse(Some("threads")),
            DispatchChoice::Threads
        );
        assert_eq!(
            DispatchChoice::parse(Some("THREADS")),
            DispatchChoice::Threads
        );
        assert_eq!(
            DispatchChoice::parse(Some(" Thread ")),
            DispatchChoice::Threads
        );
        assert_eq!(
            DispatchChoice::parse(Some("processes")),
            DispatchChoice::Processes
        );
        assert_eq!(
            DispatchChoice::parse(Some("Processes")),
            DispatchChoice::Processes
        );
        assert_eq!(
            DispatchChoice::parse(Some(" PROCESS ")),
            DispatchChoice::Processes
        );
        assert_eq!(
            DispatchChoice::parse(Some("socket")),
            DispatchChoice::Socket
        );
        assert_eq!(
            DispatchChoice::parse(Some("Sockets")),
            DispatchChoice::Socket
        );
        // Junk is Unknown — the constructor then falls back to threads.
        assert_eq!(
            DispatchChoice::parse(Some("bogus")),
            DispatchChoice::Unknown
        );
        assert_eq!(DispatchChoice::parse(Some("42")), DispatchChoice::Unknown);
    }

    #[test]
    fn dispatcher_selection_policy() {
        // Exercised through the pure core so the assertions do not depend
        // on whatever OSP_DISPATCH happens to be in the ambient
        // environment (and no test ever mutates the process env).
        for unset_or_threads in [None, Some("threads"), Some("bogus"), Some("THReads ")] {
            let d = dispatcher_for(unset_or_threads);
            assert_eq!(d.backend(), "threads", "choice {unset_or_threads:?}");
            assert!(d.lanes() >= 1);
        }
        // `processes` yields the process backend when the worker binary is
        // locatable, and falls back to threads (never panics) otherwise.
        let d = dispatcher_for(Some("processes"));
        assert!(matches!(d.backend(), "processes" | "threads"));
        assert!(d.lanes() >= 1);
        // `socket` needs a live OSP_WORKER_ADDRS fleet; without one the
        // selection falls back to threads rather than failing. (When the
        // ambient env does name a fleet, the socket backend is selected.)
        let d = dispatcher_for(Some("socket"));
        assert!(matches!(d.backend(), "sockets" | "threads"));
        assert!(d.lanes() >= 1);
    }
}
