//! The experiments' bridge to the core batch-replay engine.
//!
//! Every experiment follows the same discipline so parallel replay cannot
//! change any number:
//!
//! 1. draw all seeds *sequentially* from the experiment's
//!    [`SeedSequence`] — in exactly the order the old one-at-a-time loops
//!    drew them, so reports stay comparable PR-over-PR;
//! 2. fan the `(instance × seed × algorithm)` work-list across the shared
//!    [`ReplayPool`];
//! 3. consume the outcomes in job order.
//!
//! Shard count comes from `OSP_REPLAY_SHARDS` (default: all cores); the
//! `tests/batch_equivalence.rs` conformance suite proves outcomes are
//! bit-identical at any shard count.
//!
//! Work that is expressible as data-driven
//! [`JobSpec`](osp_core::JobSpec)s (rather than closures over bespoke
//! instances) can additionally choose its backend:
//! [`dispatcher`] returns threads or `osp-worker` processes depending on
//! `OSP_DISPATCH`, behind the common [`Dispatcher`] contract — same
//! seeds, same order, bit-identical outcomes either way (pinned by
//! `tests/process_pool_conformance.rs`).

pub use osp_core::{Dispatcher, ProcessPool, ReplayJob, ReplayPool, SpecPool};
use osp_net::NetResolver;
use osp_stats::SeedSequence;

/// The pool all experiments share: sized by `OSP_REPLAY_SHARDS`, falling
/// back to the machine's available parallelism.
pub fn pool() -> ReplayPool {
    ReplayPool::from_env()
}

/// The spec-job backend the experiments share, selected by
/// `OSP_DISPATCH`:
///
/// * unset or `threads` — [`SpecPool`] over the shared [`pool`], resolving
///   specs in-process through the full workspace registry
///   ([`NetResolver`]);
/// * `processes` — a [`ProcessPool`] of `osp-worker` children sized by
///   `OSP_WORKERS` (build the binary first:
///   `cargo build --release --bin osp-worker`).
///
/// If `processes` is requested but the worker binary cannot be located,
/// the selection falls back to threads with a note on stderr — outcomes
/// are bit-identical either way, so an experiment never blocks on the
/// missing binary.
pub fn dispatcher() -> Box<dyn Dispatcher> {
    dispatcher_for(std::env::var("OSP_DISPATCH").ok().as_deref())
}

/// Pure core of [`dispatcher`]: `choice` is the raw `OSP_DISPATCH`
/// content (or `None` if unset).
fn dispatcher_for(choice: Option<&str>) -> Box<dyn Dispatcher> {
    match choice {
        Some("processes") => match ProcessPool::from_env() {
            Ok(pool) => Box::new(pool),
            Err(e) => {
                eprintln!("OSP_DISPATCH=processes unavailable ({e}); falling back to threads");
                Box::new(SpecPool::new(pool(), NetResolver))
            }
        },
        _ => Box::new(SpecPool::new(pool(), NetResolver)),
    }
}

/// Draws `n` seeds from the sequence — the batch-side equivalent of `n`
/// sequential `next_seed()` calls, so downstream draws stay aligned with
/// the pre-batching harness.
pub fn draw_seeds(seeds: &mut SeedSequence, n: usize) -> Vec<u64> {
    (0..n).map(|_| seeds.next_seed()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draw_seeds_matches_sequential_draws() {
        let mut a = SeedSequence::new(3);
        let batch = draw_seeds(&mut a, 5);
        let mut b = SeedSequence::new(3);
        let seq: Vec<u64> = (0..5).map(|_| b.next_seed()).collect();
        assert_eq!(batch, seq);
        // The sequence advances identically.
        assert_eq!(a.next_seed(), b.next_seed());
    }

    #[test]
    fn pool_respects_env_override() {
        // from_env is exercised indirectly; at minimum it must build.
        assert!(pool().shards() >= 1);
    }

    #[test]
    fn dispatcher_selection_policy() {
        // Exercised through the pure core so the assertions do not depend
        // on whatever OSP_DISPATCH happens to be in the ambient
        // environment (and no test ever mutates the process env).
        for unset_or_threads in [None, Some("threads"), Some("bogus")] {
            let d = dispatcher_for(unset_or_threads);
            assert_eq!(d.backend(), "threads", "choice {unset_or_threads:?}");
            assert!(d.lanes() >= 1);
        }
        // `processes` yields the process backend when the worker binary is
        // locatable, and falls back to threads (never panics) otherwise.
        let d = dispatcher_for(Some("processes"));
        assert!(matches!(d.backend(), "processes" | "threads"));
        assert!(d.lanes() >= 1);
    }
}
