//! `thm1` — Theorem 1 and Corollary 6 upper bounds on random workloads.
//!
//! For each sampled instance we bracket `w(opt)`, measure `E[w(randPr)]`
//! over many seeds, and report the *conservative* measured ratio
//! (`opt_upper / benefit_CI_lower`) next to the Theorem 1 bound
//! `k_max·sqrt(σ·σ$/σ$)` and the Corollary 6 bound `k_max·sqrt(σ_max)`.
//! The theorem holds iff measured ≤ bound on every row.

use osp_core::algorithms::RandPr;
use osp_core::bounds;
use osp_core::gen::{random_instance, CapacityModel, LoadModel, RandomInstanceConfig, WeightModel};
use osp_core::stats::InstanceStats;
use osp_stats::SeedSequence;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::ratio::{conservative_ratio, measure, opt_bracket};
use crate::report::{NamedTable, Report};
use crate::Scale;

/// Runs the experiment.
pub fn run(scale: Scale, seed: u64) -> Report {
    let trials: u32 = scale.pick(80, 400);
    let mut seeds = SeedSequence::new(seed).child("thm1");

    let mut report = Report::new(
        "thm1",
        "Theorem 1 / Corollary 6: randPr upper bounds",
        "CR(randPr) ≤ k_max·sqrt(mean(σ·σ$)/mean(σ$)) ≤ k_max·sqrt(σ_max) on unit-capacity \
         instances. Measured ratios must sit below both bounds; the refined bound must \
         not exceed the coarse one.",
    );

    // (label, m, n, load, weights)
    let weight_models: &[(&str, WeightModel)] = &[
        ("unit", WeightModel::Unit),
        ("zipf", WeightModel::Zipf { exponent: 1.0 }),
    ];
    let grid: &[(usize, usize, LoadModel)] = scale.pick(
        &[
            (24usize, 40usize, LoadModel::Fixed(3)),
            (40, 80, LoadModel::Uniform { lo: 1, hi: 6 }),
        ][..],
        &[
            (24, 40, LoadModel::Fixed(3)),
            (40, 80, LoadModel::Uniform { lo: 1, hi: 6 }),
            (40, 120, LoadModel::Fixed(8)),
            (60, 150, LoadModel::Uniform { lo: 2, hi: 12 }),
            (80, 200, LoadModel::Uniform { lo: 1, hi: 16 }),
        ][..],
    );

    let mut table = NamedTable::new(
        "Measured ratio vs bounds (unit capacity)",
        &[
            "workload",
            "weights",
            "k_max",
            "σ_max",
            "opt bracket",
            "E[randPr] (95% CI)",
            "measured ≤",
            "Thm1 bound",
            "Cor6 bound",
            "holds",
        ],
    );
    let mut all_hold = true;
    for &(m, n, load) in grid {
        for &(wname, weights) in weight_models {
            let cfg = RandomInstanceConfig {
                num_sets: m,
                num_elements: n,
                load,
                weights,
                capacities: CapacityModel::Unit,
            };
            let mut rng = StdRng::seed_from_u64(seeds.next_seed());
            let inst = random_instance(&cfg, &mut rng).expect("feasible config");
            let st = InstanceStats::compute(&inst);
            let bracket = opt_bracket(&inst);
            let meas = measure(
                &inst,
                |s| Box::new(RandPr::from_seed(s)),
                trials,
                &mut seeds,
            );
            let measured = conservative_ratio(&bracket, &meas);
            let b1 = bounds::theorem_1(&st);
            let b6 = bounds::corollary_6(&st);
            let holds = measured <= b1 + 1e-9 && b1 <= b6 + 1e-9;
            all_hold &= holds;
            table.row(vec![
                format!("m={m} n={n} {load:?}"),
                wname.to_string(),
                st.k_max.to_string(),
                st.sigma_max.to_string(),
                format!(
                    "[{:.2}, {:.2}]{}",
                    bracket.lower,
                    bracket.upper,
                    if bracket.exact { " exact" } else { "" }
                ),
                format!("{:.3} ± {:.3}", meas.mean, meas.ci.width() / 2.0),
                format!("{measured:.3}"),
                format!("{b1:.3}"),
                format!("{b6:.3}"),
                holds.to_string(),
            ]);
        }
    }
    report.table(table);
    report.note(if all_hold {
        "Verdict: every measured ratio respects Theorem 1, and Theorem 1 ≤ Corollary 6 \
         throughout (the refined bound is the sharper one, as claimed)."
    } else {
        "Verdict: a bound was violated — inspect the table."
    });
    report
}
