//! `thm2` — the randomized lower bound distribution in action.
//!
//! Lemma 9 gives a distribution where `opt ≥ ℓ³` yet every deterministic
//! algorithm completes only `O((log ℓ / log log ℓ)²)` sets in expectation.
//! We sample the distribution for growing `ℓ`, average each deterministic
//! baseline (and `randPr`) over samples, and chart the witnessed ratio
//! against the Theorem 2 trend `k_max (log log k / log k)² sqrt(σ_max)`.
//! The weak §4.2 construction is included as a second table.

use osp_adversary::gadget_lb::gadget_lower_bound;
use osp_adversary::weak::weak_lower_bound;
use osp_core::algorithms::{GreedyOnline, RandPr, TieBreak};
use osp_core::bounds::theorem_2_lower;
use osp_core::stats::InstanceStats;
use osp_core::OnlineAlgorithm;
use osp_stats::{SeedSequence, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::pool::{pool, ReplayJob};
use crate::report::{NamedTable, Report};
use crate::Scale;

/// Algorithm selectors for the batched replay jobs.
const FIRST_FIT: usize = 0;
const BY_WEIGHT: usize = 1;
const FEWEST_REMAINING: usize = 2;
const RAND_PR: usize = 3;

fn alg_factory(alg: usize, seed: u64) -> Box<dyn OnlineAlgorithm> {
    match alg {
        FIRST_FIT => Box::new(GreedyOnline::new(TieBreak::ByIndex)),
        BY_WEIGHT => Box::new(GreedyOnline::new(TieBreak::ByWeight)),
        FEWEST_REMAINING => Box::new(GreedyOnline::new(TieBreak::ByFewestRemaining)),
        _ => Box::new(RandPr::from_seed(seed)),
    }
}

/// Runs the experiment.
pub fn run(scale: Scale, seed: u64) -> Report {
    let ells: &[u64] = scale.pick(&[3, 4], &[3, 4, 5, 7, 8]);
    let samples: usize = scale.pick(2, 5);
    let mut seeds = SeedSequence::new(seed).child("thm2");

    let mut report = Report::new(
        "thm2",
        "Theorem 2: the randomized lower bound distribution",
        "On the Lemma 9 distribution, opt ≥ ℓ³ while deterministic algorithms complete \
         O((log ℓ/log log ℓ)²) sets in expectation; the induced ratio grows like \
         Ω(k_max (log log k/log k)² sqrt(σ_max)). Polylog-many completions against a \
         cubically growing optimum is the shape to verify.",
    );

    let mut table = NamedTable::new(
        "Lemma 9 distribution — mean completed sets over samples",
        &[
            "ℓ",
            "opt (ℓ³)",
            "first-fit",
            "by-weight",
            "fewest-rem",
            "randPr",
            "ratio (ff)",
            "Thm2 trend",
            "polylog² (log ℓ/log log ℓ)²",
        ],
    );
    for &ell in ells {
        let mut ff = Summary::new();
        let mut bw = Summary::new();
        let mut fr = Summary::new();
        let mut rp = Summary::new();
        let mut trend = 0.0;
        // Draw all seeds sequentially (generation seed, then randPr seed,
        // per sample — the pre-batching order), then fan the replays out.
        let mut instances = Vec::with_capacity(samples);
        let mut rp_seeds = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut rng = StdRng::seed_from_u64(seeds.next_seed());
            let g = gadget_lower_bound(ell, &mut rng).expect("prime power");
            let st = InstanceStats::compute(&g.instance);
            trend = theorem_2_lower(st.k_max, st.sigma_max);
            instances.push(g.instance);
            rp_seeds.push(seeds.next_seed());
        }
        let jobs: Vec<ReplayJob<'_>> = instances
            .iter()
            .zip(&rp_seeds)
            .flat_map(|(instance, &seed)| {
                [FIRST_FIT, BY_WEIGHT, FEWEST_REMAINING, RAND_PR]
                    .into_iter()
                    .map(move |algorithm| ReplayJob {
                        instance,
                        algorithm,
                        seed,
                    })
            })
            .collect();
        for (job, out) in jobs.iter().zip(pool().run_jobs(&jobs, &alg_factory)) {
            let benefit = out.expect("built-in algorithms are valid").benefit();
            match job.algorithm {
                FIRST_FIT => ff.add(benefit),
                BY_WEIGHT => bw.add(benefit),
                FEWEST_REMAINING => fr.add(benefit),
                _ => rp.add(benefit),
            }
        }
        let opt = ell.pow(3) as f64;
        let l = ell as f64;
        let polylog = (l.ln() / l.ln().ln().max(0.1)).powi(2);
        table.row(vec![
            ell.to_string(),
            format!("{opt:.0}"),
            format!("{:.1}", ff.mean()),
            format!("{:.1}", bw.mean()),
            format!("{:.1}", fr.mean()),
            format!("{:.1}", rp.mean()),
            format!("{:.1}", opt / ff.mean().max(1.0)),
            format!("{trend:.1}"),
            format!("{polylog:.1}"),
        ]);
    }
    report.table(table);

    // Weak construction sweep.
    let ts: &[usize] = scale.pick(&[8, 16], &[8, 16, 32, 64]);
    let mut weak_table = NamedTable::new(
        "Weak §4.2 construction (t² sets, opt = t)",
        &[
            "t",
            "opt",
            "first-fit completed",
            "randPr completed",
            "ratio (ff)",
            "ln t",
        ],
    );
    for &t in ts {
        let mut ff = Summary::new();
        let mut rp = Summary::new();
        let mut instances = Vec::with_capacity(samples);
        let mut rp_seeds = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut rng = StdRng::seed_from_u64(seeds.next_seed());
            let w = weak_lower_bound(t, &mut rng).expect("valid t");
            instances.push(w.instance);
            rp_seeds.push(seeds.next_seed());
        }
        let jobs: Vec<ReplayJob<'_>> = instances
            .iter()
            .zip(&rp_seeds)
            .flat_map(|(instance, &seed)| {
                [FIRST_FIT, RAND_PR]
                    .into_iter()
                    .map(move |algorithm| ReplayJob {
                        instance,
                        algorithm,
                        seed,
                    })
            })
            .collect();
        for (job, out) in jobs.iter().zip(pool().run_jobs(&jobs, &alg_factory)) {
            let benefit = out.expect("built-in algorithms are valid").benefit();
            match job.algorithm {
                FIRST_FIT => ff.add(benefit),
                _ => rp.add(benefit),
            }
        }
        weak_table.row(vec![
            t.to_string(),
            t.to_string(),
            format!("{:.1}", ff.mean()),
            format!("{:.1}", rp.mean()),
            format!("{:.1}", t as f64 / ff.mean().max(1.0)),
            format!("{:.1}", (t as f64).ln()),
        ]);
    }
    report.table(weak_table);
    report.note(
        "Verdict criteria: completions stay polylogarithmic in ℓ (resp. ~log t for the weak \
         construction) while opt grows as ℓ³ (resp. t), so the witnessed ratio grows with \
         the Theorem 2 trend. randPr is subject to the same distribution — no algorithm, \
         randomized or not, escapes.",
    );
    report
}
