//! `thm4` — variable capacities and the adjusted-load bound.
//!
//! Theorem 4: with per-element capacities `b(u)`, the competitive ratio of
//! `randPr` is at most `16e·k_max·sqrt(ν·σ$/σ$)` where `ν = σ/b` is the
//! adjusted load. We sweep capacity distributions and check the measured
//! ratio against the bound, also reporting the (much smaller) unit-capacity
//! Theorem 1 value to show how extra capacity slackens contention.

use osp_core::algorithms::RandPr;
use osp_core::bounds;
use osp_core::gen::{random_instance, CapacityModel, LoadModel, RandomInstanceConfig, WeightModel};
use osp_core::stats::InstanceStats;
use osp_stats::SeedSequence;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::ratio::{conservative_ratio, measure, opt_bracket};
use crate::report::{NamedTable, Report};
use crate::Scale;

/// Runs the experiment.
pub fn run(scale: Scale, seed: u64) -> Report {
    let trials: u32 = scale.pick(80, 400);
    let mut seeds = SeedSequence::new(seed).child("thm4");

    let mut report = Report::new(
        "thm4",
        "Theorem 4: variable capacities (adjusted load)",
        "CR(randPr) ≤ 16e·k_max·sqrt(mean(ν·σ$)/mean(σ$)) with ν(u) = σ(u)/b(u). Measured \
         conservative ratios must sit below the bound, and growing capacities should \
         shrink both the measured ratio and the adjusted-load bound.",
    );

    let caps: &[(&str, CapacityModel)] = &[
        ("b=1", CapacityModel::Unit),
        ("b=2", CapacityModel::Fixed(2)),
        ("b∈[1,4]", CapacityModel::Uniform { lo: 1, hi: 4 }),
        ("b=4", CapacityModel::Fixed(4)),
    ];
    let weight_models: &[(&str, WeightModel)] = scale.pick(
        &[("unit", WeightModel::Unit)][..],
        &[
            ("unit", WeightModel::Unit),
            ("uniform[0.5,4]", WeightModel::Uniform { lo: 0.5, hi: 4.0 }),
        ][..],
    );

    let mut table = NamedTable::new(
        "Capacity sweep (m=40, n=100, σ(u) ∈ [2,8])",
        &[
            "capacities",
            "weights",
            "ν_max",
            "measured ≤",
            "Thm4 bound",
            "Thm1 (unit-cap form)",
            "holds",
        ],
    );
    let mut all_hold = true;
    let mut last_measured = f64::INFINITY;
    for &(cname, capacities) in caps {
        for &(wname, weights) in weight_models {
            let cfg = RandomInstanceConfig {
                num_sets: 40,
                num_elements: 100,
                load: LoadModel::Uniform { lo: 2, hi: 8 },
                weights,
                capacities,
            };
            let mut rng = StdRng::seed_from_u64(seeds.next_seed());
            let inst = random_instance(&cfg, &mut rng).expect("feasible config");
            let st = InstanceStats::compute(&inst);
            let bracket = opt_bracket(&inst);
            let meas = measure(
                &inst,
                |s| Box::new(RandPr::from_seed(s)),
                trials,
                &mut seeds,
            );
            let measured = conservative_ratio(&bracket, &meas);
            let b4 = bounds::theorem_4(&st);
            let b1 = bounds::theorem_1(&st);
            let holds = measured <= b4 + 1e-9;
            all_hold &= holds;
            if wname == "unit" {
                last_measured = measured;
            }
            table.row(vec![
                cname.to_string(),
                wname.to_string(),
                format!("{:.2}", st.nu_max),
                format!("{measured:.3}"),
                format!("{b4:.3}"),
                format!("{b1:.3}"),
                holds.to_string(),
            ]);
        }
    }
    let _ = last_measured;
    report.table(table);
    report.note(if all_hold {
        "Verdict: the adjusted-load bound holds across all capacity models; both the bound \
         and the measured ratio fall as capacities grow (ν shrinks)."
    } else {
        "Verdict: a bound was violated — inspect the table."
    });
    report
}
