//! `lemma1` — statistical verification of Lemma 1.
//!
//! Lemma 1: under unit capacity, `Pr[S ∈ alg] = w(S)/w(N[S])` for `randPr`.
//! We run many seeded executions on fixed weighted systems and compare the
//! empirical completion frequency of every set to the exact prediction,
//! with 99% confidence intervals.

use osp_core::algorithms::RandPr;
use osp_core::{Instance, InstanceBuilder, SetId};
use osp_opt::conflict::neighborhood_weights;
use osp_stats::{SeedSequence, Summary};

use crate::pool::{draw_seeds, pool};

use crate::report::{NamedTable, Report};
use crate::Scale;

/// A named fixture instance.
fn fixtures() -> Vec<(&'static str, Instance)> {
    let mut out = Vec::new();

    // Weighted star: four singletons of weights 1..4 on one element.
    let mut b = InstanceBuilder::new();
    let ids: Vec<SetId> = (1..=4).map(|w| b.add_set(f64::from(w), 1)).collect();
    b.add_element(1, &ids);
    out.push(("weighted star (w = 1,2,3,4)", b.build().unwrap()));

    // Chain: s0-{e0}-s1-{e1}-s2, mixed weights and sizes.
    let mut b = InstanceBuilder::new();
    let s0 = b.add_set(2.0, 1);
    let s1 = b.add_set(1.0, 2);
    let s2 = b.add_set(3.0, 1);
    b.add_element(1, &[s0, s1]);
    b.add_element(1, &[s1, s2]);
    out.push(("chain s0–s1–s2 (w = 2,1,3)", b.build().unwrap()));

    // Two-element frame against fresh singletons (the motivating shape).
    let mut b = InstanceBuilder::new();
    let frame = b.add_set(2.0, 2);
    let r0 = b.add_set(1.0, 1);
    let r1 = b.add_set(1.5, 1);
    b.add_element(1, &[frame, r0]);
    b.add_element(1, &[frame, r1]);
    out.push((
        "frame vs fresh rivals (w = 2 vs 1, 1.5)",
        b.build().unwrap(),
    ));

    out
}

/// Runs the experiment.
pub fn run(scale: Scale, seed: u64) -> Report {
    let trials: u32 = scale.pick(20_000, 200_000);
    let mut seeds = SeedSequence::new(seed).child("lemma1");

    let mut report = Report::new(
        "lemma1",
        "Lemma 1: Pr[S ∈ alg] = w(S)/w(N[S])",
        "For randPr on unit-capacity instances, each set completes with probability exactly \
         its weight divided by the total weight of its closed neighborhood.",
    );

    let mut all_ok = true;
    for (name, inst) in fixtures() {
        let nbw = neighborhood_weights(&inst);
        let m = inst.num_sets();
        let mut completions: Vec<Summary> = vec![Summary::new(); m];
        let trial_seeds = draw_seeds(&mut seeds, trials as usize);
        for out in pool().run_seeds(&inst, &trial_seeds, &|s| Box::new(RandPr::from_seed(s))) {
            for (i, s) in completions.iter_mut().enumerate() {
                s.add(if out.is_completed(SetId(i as u32)) {
                    1.0
                } else {
                    0.0
                });
            }
        }

        let mut table = NamedTable::new(
            &format!("{name} — {trials} trials"),
            &[
                "set",
                "w(S)",
                "w(N[S])",
                "predicted",
                "empirical",
                "99% CI",
                "CI hit",
            ],
        );
        for i in 0..m {
            let sid = SetId(i as u32);
            let w = inst.set(sid).weight();
            let predicted = w / nbw[i];
            let ci = completions[i].confidence_interval(0.99);
            let hit = ci.contains(predicted);
            all_ok &= hit;
            table.row(vec![
                sid.to_string(),
                format!("{w:.2}"),
                format!("{:.2}", nbw[i]),
                format!("{predicted:.5}"),
                format!("{:.5}", completions[i].mean()),
                format!("[{:.5}, {:.5}]", ci.lo, ci.hi),
                hit.to_string(),
            ]);
        }
        report.table(table);
    }
    report.note(if all_ok {
        "Verdict: every predicted probability falls inside its 99% confidence interval."
    } else {
        "Verdict: at least one prediction fell outside its 99% CI — inspect the table."
    });
    report
}
