//! `thm6` — uniform element load: ratio ≤ `k̄·sqrt(σ)`.
//!
//! Theorem 6 keeps loads uniform but lets set sizes vary; the bound uses
//! the *average* size `k̄` (not `k_max`) times `sqrt(σ)`. The fixed-load
//! random family produces exactly this regime.

use osp_core::algorithms::RandPr;
use osp_core::bounds;
use osp_core::gen::{random_instance, LoadModel, RandomInstanceConfig};
use osp_core::stats::InstanceStats;
use osp_stats::SeedSequence;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::ratio::{conservative_ratio, measure, opt_bracket};
use crate::report::{NamedTable, Report};
use crate::Scale;

/// Runs the experiment.
pub fn run(scale: Scale, seed: u64) -> Report {
    let trials: u32 = scale.pick(100, 400);
    let mut seeds = SeedSequence::new(seed).child("thm6");

    let mut report = Report::new(
        "thm6",
        "Theorem 6: uniform load σ, variable set sizes",
        "When every element has load exactly σ (unweighted), the ratio is at most \
         k̄·sqrt(σ) with k̄ the *average* set size.",
    );

    let sigmas: &[u32] = scale.pick(&[2, 4][..], &[2, 3, 4, 6, 8, 12][..]);
    let mut table = NamedTable::new(
        "Uniform-load sweep (m=40, n=90)",
        &[
            "σ",
            "k̄",
            "k_max",
            "measured ≤",
            "Thm6 bound k̄√σ",
            "Cor6 (k_max√σ)",
            "holds",
        ],
    );
    let mut all_hold = true;
    for &sigma in sigmas {
        let cfg = RandomInstanceConfig {
            num_sets: 40,
            num_elements: 90,
            load: LoadModel::Fixed(sigma),
            weights: osp_core::gen::WeightModel::Unit,
            capacities: osp_core::gen::CapacityModel::Unit,
        };
        let mut rng = StdRng::seed_from_u64(seeds.next_seed());
        let inst = random_instance(&cfg, &mut rng).expect("feasible");
        let st = InstanceStats::compute(&inst);
        let bracket = opt_bracket(&inst);
        let meas = measure(
            &inst,
            |s| Box::new(RandPr::from_seed(s)),
            trials,
            &mut seeds,
        );
        let measured = conservative_ratio(&bracket, &meas);
        let bound = bounds::theorem_6(&st).expect("uniform load by construction");
        let cor6 = bounds::corollary_6(&st);
        let holds = measured <= bound + 1e-9;
        all_hold &= holds;
        table.row(vec![
            sigma.to_string(),
            format!("{:.2}", st.k_mean),
            st.k_max.to_string(),
            format!("{measured:.2}"),
            format!("{bound:.2}"),
            format!("{cor6:.2}"),
            holds.to_string(),
        ]);
    }
    report.table(table);
    report.note(if all_hold {
        "Verdict: measured ratios track k̄·sqrt(σ) from below; note how much sharper the \
         k̄-based bound is than the k_max-based Corollary 6 when sizes vary."
    } else {
        "Verdict: a bound was violated — inspect the table."
    });
    report
}
