//! `multihop` — distributed scheduling across store-and-forward hops
//! (§1, scenario 2 + the §3.1 distributed implementation).

use osp_adversary as _; // (crate graph symmetry; nothing needed here)
use osp_core::algorithms::HashRandPr;
use osp_core::run as engine_run;
use osp_net::multihop::{federated_run, multihop_instance, MultihopConfig};
use osp_net::policy::TailDrop;
use osp_stats::{SeedSequence, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::pool::{draw_seeds, pool};
use crate::report::{NamedTable, Report};
use crate::Scale;

/// Runs the experiment.
pub fn run(scale: Scale, seed: u64) -> Report {
    let repeats: usize = scale.pick(3, 8);
    let hash_trials: u64 = scale.pick(10, 40);
    let mut seeds = SeedSequence::new(seed).child("multihop");

    let mut report = Report::new(
        "multihop",
        "Multi-hop scheduling with per-hop HashRandPr replicas",
        "Each (time, hop) pair is an element, each packet a set of H such pairs. Every hop \
         runs its own HashRandPr replica sharing only the hash seed; the federated run must \
         equal the centralized run decision-for-decision, and beat hop-local tail-drop on \
         delivered packets.",
    );

    let mut table = NamedTable::new(
        "Line networks (60 packets, window 30, capacity 1; means over traces × seeds)",
        &[
            "hops",
            "elements",
            "federated = centralized",
            "hashPr delivered",
            "tail-drop delivered",
        ],
    );
    for &hops in scale.pick(&[2u32, 4][..], &[2u32, 3, 4, 6][..]) {
        let mut consistent = true;
        let mut hash_delivered = Summary::new();
        let mut tail_delivered = Summary::new();
        let mut elements = 0usize;
        for _ in 0..repeats {
            let cfg = MultihopConfig {
                hops,
                packets: 60,
                launch_window: 30,
                capacity: 1,
            };
            let mut rng = StdRng::seed_from_u64(seeds.next_seed());
            let mh = multihop_instance(&cfg, &mut rng).expect("valid config");
            elements = mh.instance.num_elements();
            // Each trial runs the federated replicas *and* the centralized
            // reference; trials are independent, so fan them out.
            let trial_seeds = draw_seeds(&mut seeds, hash_trials as usize);
            for (agreed, delivered) in pool().map(&trial_seeds, |_, &s| {
                let fed = federated_run(&mh, 8, s).unwrap();
                let central = engine_run(&mh.instance, &mut HashRandPr::new(8, s)).unwrap();
                (
                    fed.decisions() == central.decisions(),
                    fed.completed().len(),
                )
            }) {
                consistent &= agreed;
                hash_delivered.add(delivered as f64);
            }
            let tail = engine_run(&mh.instance, &mut TailDrop::new()).unwrap();
            tail_delivered.add(tail.completed().len() as f64);
        }
        table.row(vec![
            hops.to_string(),
            elements.to_string(),
            consistent.to_string(),
            format!("{:.1}", hash_delivered.mean()),
            format!("{:.1}", tail_delivered.mean()),
        ]);
    }
    report.table(table);
    report.note(
        "Verdict criteria: the consistency column must read `true` everywhere (the \
         distributed implementation is exact, not approximate), and hashPr's delivered \
         count should not trail tail-drop's as hops grow (longer paths punish policies \
         that spread losses).",
    );
    report
}
