//! One module per experiment; see DESIGN.md §5 for the experiment index.

mod ablations;
mod buffers;
mod fig1;
mod lemma1;
mod multihop;
mod replay;
mod thm1;
mod thm2;
mod thm3;
mod thm4;
mod thm5;
mod thm6;
mod video;

use crate::report::Report;
use crate::Scale;

/// All experiment ids, in presentation order.
pub const ALL: [&str; 13] = [
    "fig1",
    "lemma1",
    "thm1",
    "thm2",
    "thm3",
    "thm4",
    "thm5",
    "thm6",
    "video",
    "multihop",
    "buffers",
    "ablations",
    "replay",
];

/// Runs one experiment by id.
///
/// Returns `None` for an unknown id. The root `seed` makes every
/// experiment fully reproducible.
pub fn run(id: &str, scale: Scale, seed: u64) -> Option<Report> {
    let report = match id {
        "fig1" => fig1::run(scale, seed),
        "lemma1" => lemma1::run(scale, seed),
        "thm1" => thm1::run(scale, seed),
        "thm2" => thm2::run(scale, seed),
        "thm3" => thm3::run(scale, seed),
        "thm4" => thm4::run(scale, seed),
        "thm5" => thm5::run(scale, seed),
        "thm6" => thm6::run(scale, seed),
        "video" => video::run(scale, seed),
        "multihop" => multihop::run(scale, seed),
        "buffers" => buffers::run(scale, seed),
        "ablations" => ablations::run(scale, seed),
        "replay" => replay::run(scale, seed),
        _ => return None,
    };
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(run("nope", Scale::Quick, 0).is_none());
    }

    #[test]
    fn all_ids_resolve() {
        // Smoke-run the cheapest experiments end to end at quick scale;
        // the expensive ones are covered by integration tests and the
        // experiments binary.
        for id in ["fig1", "lemma1"] {
            let r = run(id, Scale::Quick, 1).unwrap();
            assert_eq!(r.id, id);
            assert!(!r.tables.is_empty());
        }
    }
}
