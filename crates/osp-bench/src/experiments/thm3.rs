//! `thm3` — the deterministic lower bound, executed.
//!
//! Theorem 3: every deterministic online algorithm is at least
//! `σ_max^(k_max−1)`-competitive. The adaptive adversary is run against
//! every deterministic baseline; the witnessed ratio (certified opt over
//! achieved benefit) must meet the bound. `randPr` is replayed on the same
//! instances for contrast — randomization escapes the trap.

use osp_adversary::deterministic::run_deterministic_adversary;
use osp_core::algorithms::{GreedyOnline, RandPr, TieBreak};
use osp_core::bounds::theorem_3_lower;
use osp_net::policy::TailDrop;
use osp_stats::{SeedSequence, Summary};

use crate::pool::{draw_seeds, pool};
use crate::report::{NamedTable, Report};
use crate::Scale;

/// Runs the experiment.
pub fn run(scale: Scale, seed: u64) -> Report {
    let params: &[(u32, u32)] = scale.pick(
        &[(2u32, 3u32), (3, 3)][..],
        &[(2, 3), (2, 5), (3, 3), (3, 4), (4, 3), (5, 2)][..],
    );
    let randpr_trials: u32 = scale.pick(100, 400);
    let mut seeds = SeedSequence::new(seed).child("thm3");

    let mut report = Report::new(
        "thm3",
        "Theorem 3: deterministic algorithms are σ^(k−1)-bad",
        "Against the adaptive adversary with parameters (σ, k), every deterministic \
         algorithm completes at most 1 set while a certified optimum completes σ^(k−1). \
         randPr, replayed on the very instance built to kill greedy, recovers much more.",
    );

    let mut table = NamedTable::new(
        "Adversary runs",
        &[
            "σ",
            "k",
            "algorithm",
            "alg benefit",
            "certified opt",
            "witnessed ratio",
            "Thm3 bound σ^(k−1)",
            "meets bound",
        ],
    );
    let mut all_meet = true;
    for &(sigma, k) in params {
        let mut det_algs: Vec<Box<dyn osp_core::OnlineAlgorithm>> = vec![Box::new(TailDrop::new())];
        for policy in TieBreak::all() {
            det_algs.push(Box::new(GreedyOnline::new(policy)));
        }
        let bound = theorem_3_lower(sigma, k);
        let mut anti_greedy_instance = None;
        for mut alg in det_algs {
            let name = alg.name();
            let res =
                run_deterministic_adversary(sigma, k, alg.as_mut()).expect("parameters validated");
            let ratio = res.witnessed_ratio();
            let meets = ratio >= bound - 1e-9;
            all_meet &= meets;
            table.row(vec![
                sigma.to_string(),
                k.to_string(),
                name.clone(),
                format!("{:.0}", res.outcome.benefit()),
                res.certified_opt.len().to_string(),
                format!("{ratio:.1}"),
                format!("{bound:.0}"),
                meets.to_string(),
            ]);
            if name == "greedy[first-fit]" {
                anti_greedy_instance = Some(res.instance);
            }
        }
        // randPr on the anti-first-fit instance.
        if let Some(inst) = anti_greedy_instance {
            let mut s = Summary::new();
            let trial_seeds = draw_seeds(&mut seeds, randpr_trials as usize);
            for out in pool().run_seeds(&inst, &trial_seeds, &|sd| Box::new(RandPr::from_seed(sd)))
            {
                s.add(out.benefit());
            }
            table.row(vec![
                sigma.to_string(),
                k.to_string(),
                "randPr (same instance)".into(),
                format!("{:.2}", s.mean()),
                format!("{}", (sigma as u64).pow(k - 1)),
                "-".into(),
                "-".into(),
                "n/a (randomized)".into(),
            ]);
        }
    }
    report.table(table);
    report.note(if all_meet {
        "Verdict: every deterministic algorithm witnessed a ratio of at least σ^(k−1); \
         randPr's expected benefit on the same instances is well above 1."
    } else {
        "Verdict: some deterministic run beat the bound — inspect the table."
    });
    report
}
