//! `thm5` — uniform set size: Theorem 5 and Corollary 7.
//!
//! Theorem 5 (uniform size `k`): ratio ≤ `k·σ²/σ̄²`. Corollary 7 (uniform
//! size *and* uniform load): ratio ≤ `k`, the paper's only bound
//! independent of the load. Bi-regular instances exercise Corollary 7;
//! skewed fixed-size instances exercise Theorem 5 where `σ² ≫ σ̄²`.

use osp_core::algorithms::RandPr;
use osp_core::bounds;
use osp_core::gen::{biregular_instance, fixed_size_instance};
use osp_core::stats::InstanceStats;
use osp_stats::SeedSequence;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::ratio::{conservative_ratio, measure, opt_bracket};
use crate::report::{NamedTable, Report};
use crate::Scale;

/// Runs the experiment.
pub fn run(scale: Scale, seed: u64) -> Report {
    let trials: u32 = scale.pick(100, 400);
    let mut seeds = SeedSequence::new(seed).child("thm5");

    let mut report = Report::new(
        "thm5",
        "Theorem 5 / Corollary 7: uniform set size",
        "Uniform size k: ratio ≤ k·σ²/σ̄² (Thm 5); adding uniform load drops it to k \
         (Cor 7) — independent of σ. The bi-regular rows must sit below k even as σ \
         grows; the skewed rows must sit below the dispersion-corrected bound.",
    );

    // Corollary 7: bi-regular sweep with growing load.
    let biregular_params: &[(usize, u32, u32)] = scale.pick(
        &[(24usize, 3u32, 2u32), (24, 3, 6)][..],
        &[
            (24, 3, 2),
            (24, 3, 6),
            (24, 3, 12),
            (40, 5, 4),
            (40, 5, 10),
            (40, 5, 20),
        ][..],
    );
    let mut cor7 = NamedTable::new(
        "Corollary 7 — bi-regular (uniform k and σ): ratio ≤ k regardless of σ",
        &[
            "m",
            "k",
            "σ",
            "opt bracket",
            "E[randPr]",
            "measured ≤",
            "Cor7 bound k",
            "holds",
        ],
    );
    let mut all_hold = true;
    for &(m, k, sigma) in biregular_params {
        let mut rng = StdRng::seed_from_u64(seeds.next_seed());
        let inst = biregular_instance(m, k, sigma, &mut rng).expect("feasible bi-regular");
        let st = InstanceStats::compute(&inst);
        let bracket = opt_bracket(&inst);
        let meas = measure(
            &inst,
            |s| Box::new(RandPr::from_seed(s)),
            trials,
            &mut seeds,
        );
        let measured = conservative_ratio(&bracket, &meas);
        let bound = bounds::corollary_7(&st).expect("bi-regular is doubly uniform");
        let holds = measured <= bound + 1e-9;
        all_hold &= holds;
        cor7.row(vec![
            m.to_string(),
            k.to_string(),
            sigma.to_string(),
            format!(
                "[{:.1}, {:.1}]{}",
                bracket.lower,
                bracket.upper,
                if bracket.exact { " exact" } else { "" }
            ),
            format!("{:.2} ± {:.2}", meas.mean, meas.ci.width() / 2.0),
            format!("{measured:.2}"),
            format!("{bound:.0}"),
            holds.to_string(),
        ]);
    }
    report.table(cor7);

    // Theorem 5: fixed size, skewed loads.
    let skews: &[f64] = scale.pick(&[0.0, 1.2][..], &[0.0, 0.6, 1.2, 1.8][..]);
    let mut t5 = NamedTable::new(
        "Theorem 5 — fixed size k=4 (m=50, n=120), skewed loads: ratio ≤ k·σ²/σ̄²",
        &[
            "skew",
            "σ̄",
            "σ²/σ̄²",
            "measured ≤",
            "Thm5 bound",
            "Cor7-style k",
            "holds",
        ],
    );
    for &skew in skews {
        let mut rng = StdRng::seed_from_u64(seeds.next_seed());
        let inst = fixed_size_instance(50, 4, 120, skew, &mut rng).expect("feasible");
        let st = InstanceStats::compute(&inst);
        let bracket = opt_bracket(&inst);
        let meas = measure(
            &inst,
            |s| Box::new(RandPr::from_seed(s)),
            trials,
            &mut seeds,
        );
        let measured = conservative_ratio(&bracket, &meas);
        let bound = bounds::theorem_5(&st).expect("uniform size by construction");
        let holds = measured <= bound + 1e-9;
        all_hold &= holds;
        t5.row(vec![
            format!("{skew:.1}"),
            format!("{:.2}", st.sigma_mean),
            format!("{:.2}", st.sigma_sq_mean / (st.sigma_mean * st.sigma_mean)),
            format!("{measured:.2}"),
            format!("{bound:.2}"),
            format!("{}", st.k_max),
            holds.to_string(),
        ]);
    }
    report.table(t5);
    report.note(if all_hold {
        "Verdict: all bi-regular ratios stay below k across the σ sweep (the bound is \
         load-independent, as Corollary 7 claims), and the dispersion-corrected Theorem 5 \
         bound absorbs the skewed-load cases."
    } else {
        "Verdict: a bound was violated — inspect the table."
    });
    report
}
