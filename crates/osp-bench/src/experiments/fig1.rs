//! `fig1` — reproduces Figure 1 and the Lemma 9 invariants.
//!
//! Figure 1 in the paper depicts the three gadget stages of the lower
//! bound construction. We regenerate the construction for a sweep of `ℓ`,
//! print its stage anatomy, and check every invariant Lemma 9 claims:
//! uniform set size `k = Θ(ℓ²)`, `σ_max = Θ(ℓ²)`, `σ̄ = Θ(ℓ)`,
//! `σ² = Θ(ℓ³)`, and a feasible planted optimum of exactly `ℓ³` sets.

use osp_adversary::gadget_lb::gadget_lower_bound;
use osp_core::stats::InstanceStats;
use osp_opt::conflict::is_feasible;
use osp_stats::SeedSequence;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::pool::{draw_seeds, pool};
use crate::report::{NamedTable, Report};
use crate::Scale;

/// The ASCII rendition of Figure 1 (stage shapes).
const FIGURE_1: &str = "Stage I:   l^2 blocks of (l x l) matrices, (l,l)-gadgets, no rows
Stage II:  l rows of (l x l^2) matrices (concatenated, rows permuted), (l,l^2)-gadgets, no rows
Stage III: one ((l^2-l) x l^2) matrix over C \\ S, full gadget
Stage IV:  l^2+1 private elements per planted set";

/// Runs the experiment.
pub fn run(scale: Scale, seed: u64) -> Report {
    let ells: &[u64] = scale.pick(&[3, 4], &[3, 4, 5, 7, 8]);
    let mut seeds = SeedSequence::new(seed).child("fig1");

    let mut report = Report::new(
        "fig1",
        "Figure 1 / Lemma 9 construction anatomy",
        "Lemma 9: the four-stage construction has l^4 sets of uniform size k = Theta(l^2), \
         sigma_max = Theta(l^2), mean load Theta(l), mean squared load Theta(l^3), and a \
         feasible planted optimum of l^3 pairwise-disjoint sets.",
    );
    report.note(format!("Figure 1 stage shapes:\n```\n{FIGURE_1}\n```"));

    let mut anatomy = NamedTable::new(
        "Construction anatomy per ℓ",
        &[
            "ℓ",
            "sets",
            "elements",
            "k (=2ℓ²+ℓ+1)",
            "σ_max (ℓ²)",
            "σ̄/ℓ",
            "σ²/ℓ³",
            "stage I",
            "stage II",
            "stage III",
            "stage IV",
            "planted",
            "planted feasible",
        ],
    );

    // Construction + feasibility checks are independent per ℓ: build them
    // in parallel, then assert and render rows in sweep order.
    let gen_seeds = draw_seeds(&mut seeds, ells.len());
    let built = pool().map(ells, |i, &ell| {
        let mut rng = StdRng::seed_from_u64(gen_seeds[i]);
        let g = gadget_lower_bound(ell, &mut rng).expect("ℓ is a prime power");
        let st = InstanceStats::compute(&g.instance);
        let feasible = is_feasible(&g.instance, &g.planted);
        (g, st, feasible)
    });
    for (&ell, (g, st, feasible)) in ells.iter().zip(built) {
        let l = ell as f64;
        anatomy.row(vec![
            ell.to_string(),
            st.m.to_string(),
            st.n.to_string(),
            format!(
                "{} ({})",
                st.uniform_size.map_or("-".into(), |k| k.to_string()),
                g.set_size()
            ),
            format!("{} ({})", st.sigma_max, ell * ell),
            format!("{:.3}", st.sigma_mean / l),
            format!("{:.3}", st.sigma_sq_mean / (l * l * l)),
            g.stage_len(0).to_string(),
            g.stage_len(1).to_string(),
            g.stage_len(2).to_string(),
            g.stage_len(3).to_string(),
            format!("{} (ℓ³={})", g.planted.len(), ell.pow(3)),
            feasible.to_string(),
        ]);
        assert!(feasible, "planted optimum must be feasible");
        assert_eq!(st.uniform_size, Some(g.set_size() as u32));
        assert_eq!(u64::from(st.sigma_max), ell * ell);
        assert_eq!(g.planted.len() as u64, ell.pow(3));
    }
    report.table(anatomy);
    report.note(
        "All invariants hold: uniform k = 2ℓ²+ℓ+1, σ_max = ℓ², planted family of size ℓ³ \
         is pairwise disjoint and feasible; normalized σ̄/ℓ and σ²/ℓ³ stay within fixed \
         constants as ℓ grows (the Θ(·) claims).",
    );
    report
}
