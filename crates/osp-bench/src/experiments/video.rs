//! `video` — the paper's motivating scenario, end to end.
//!
//! GOP-structured video from several sources multiplexes onto one
//! bottleneck link. Frame-oblivious policies (tail-drop, random-drop)
//! serve packets greedily; frame-aware `randPr` maximizes *complete*
//! frames. The signature result: oblivious policies win on raw packet
//! rate yet lose badly on frame goodput, and the gap widens with load.

use osp_core::algorithms::{GreedyOnline, HashRandPr, RandPr, TieBreak};
use osp_core::OnlineAlgorithm;
use osp_net::metrics::goodput;
use osp_net::policy::{RandomDrop, TailDrop};
use osp_net::trace::{video_trace, VideoTraceConfig};
use osp_net::trace_to_instance;
use osp_stats::{SeedSequence, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::pool::{pool, ReplayJob};
use crate::report::{NamedTable, Report};
use crate::Scale;

/// Policy selectors for the batched replay jobs.
const TAIL_DROP: usize = 0;
const RANDOM_DROP: usize = 1;
const GREEDY_FR: usize = 2;
const RAND_PR: usize = 3;
const HASH_PR: usize = 4;

fn policy_factory(alg: usize, seed: u64) -> Box<dyn OnlineAlgorithm> {
    match alg {
        TAIL_DROP => Box::new(TailDrop::new()),
        RANDOM_DROP => Box::new(RandomDrop::from_seed(seed)),
        GREEDY_FR => Box::new(GreedyOnline::new(TieBreak::ByFewestRemaining)),
        RAND_PR => Box::new(RandPr::from_seed(seed)),
        _ => Box::new(HashRandPr::new(8, seed)),
    }
}

fn policy_name(alg: usize) -> &'static str {
    match alg {
        TAIL_DROP => "tail-drop",
        RANDOM_DROP => "random-drop",
        GREEDY_FR => "greedy[fewest-remaining]",
        RAND_PR => "randPr",
        _ => "hashPr(8-wise)",
    }
}

/// Runs the experiment.
pub fn run(scale: Scale, seed: u64) -> Report {
    let repeats: usize = scale.pick(3, 10);
    let randomized_trials: usize = scale.pick(10, 40);
    let mut seeds = SeedSequence::new(seed).child("video");

    let mut report = Report::new(
        "video",
        "Video over a bottleneck router (§1, scenario 1)",
        "Frames are useful only when every packet arrives. Frame-aware randPr trades raw \
         packet throughput for complete-frame goodput; frame-oblivious tail-drop does the \
         opposite. The gap should widen as the number of sources (burstiness) grows.",
    );

    for &sources in scale.pick(&[6usize, 10][..], &[4usize, 6, 8, 12][..]) {
        let mut table = NamedTable::new(
            &format!("{sources} sources, capacity 4, standard GOP (means over {repeats} traces)"),
            &[
                "policy",
                "frame rate",
                "weight rate",
                "packet rate",
                "I-frames",
                "B-frames",
            ],
        );
        // Policy name -> aggregated metrics.
        let mut rows: Vec<(String, Summary, Summary, Summary, Summary, Summary)> = Vec::new();
        for _ in 0..repeats {
            let cfg = VideoTraceConfig {
                sources,
                frames_per_source: 30,
                gop: osp_net::GopConfig::standard(),
                frame_interval: 8,
                capacity: 4,
                jitter: 0,
            };
            let mut rng = StdRng::seed_from_u64(seeds.next_seed());
            let trace = video_trace(&cfg, &mut rng);
            let mapped = trace_to_instance(&trace);

            // One batched work-list per trace; seeds are drawn here in the
            // same order the old per-policy loops drew them.
            let mut specs: Vec<(usize, u64)> = vec![(TAIL_DROP, 0)];
            specs.extend((0..randomized_trials).map(|_| (RANDOM_DROP, seeds.next_seed())));
            specs.push((GREEDY_FR, 0));
            specs.extend((0..randomized_trials).map(|_| (RAND_PR, seeds.next_seed())));
            specs.extend((0..randomized_trials).map(|_| (HASH_PR, seeds.next_seed())));
            let jobs: Vec<ReplayJob<'_>> = specs
                .iter()
                .map(|&(algorithm, seed)| ReplayJob {
                    instance: &mapped.instance,
                    algorithm,
                    seed,
                })
                .collect();
            let outcomes = pool().run_jobs(&jobs, &policy_factory);
            for (job, out) in jobs.iter().zip(outcomes) {
                let name = policy_name(job.algorithm);
                let idx = match rows.iter().position(|r| r.0 == name) {
                    Some(i) => i,
                    None => {
                        rows.push((
                            name.to_string(),
                            Summary::new(),
                            Summary::new(),
                            Summary::new(),
                            Summary::new(),
                            Summary::new(),
                        ));
                        rows.len() - 1
                    }
                };
                let out = out.expect("built-in policies are valid");
                let g = goodput(&trace, &mapped.instance, &out);
                rows[idx].1.add(g.frame_rate());
                rows[idx].2.add(g.weight_rate());
                rows[idx].3.add(g.packet_rate());
                rows[idx]
                    .4
                    .add(g.per_class_delivered[0] as f64 / g.per_class_offered[0].max(1) as f64);
                rows[idx]
                    .5
                    .add(g.per_class_delivered[2] as f64 / g.per_class_offered[2].max(1) as f64);
            }
        }
        for (name, fr, wr, pr, ifr, bfr) in &rows {
            table.row(vec![
                name.clone(),
                format!("{:.3}", fr.mean()),
                format!("{:.3}", wr.mean()),
                format!("{:.3}", pr.mean()),
                format!("{:.3}", ifr.mean()),
                format!("{:.3}", bfr.mean()),
            ]);
        }
        report.table(table);
    }
    report.note(
        "Reading guide: random-drop — the genuinely frame-oblivious policy — collapses on \
         weighted goodput and essentially never delivers an I-frame under load. Tail-drop \
         fares better than naive expectation because serving the lowest frame ids \
         approximates oldest-frame-first, an accidental form of frame awareness — but it is \
         value-blind, so randPr beats it on weight rate and on I-frames, the metric the \
         weighted model optimizes. greedy[fewest-remaining] tops raw frame counts here but \
         is exactly the policy Theorem 3 destroys adversarially (see thm3); randPr's \
         guarantee is worst-case, not just average-case. hashPr matches randPr — the \
         distributed implementation costs nothing.",
    );
    report
}
