//! `buffers` — open problem 2: the effect of buffers.
//!
//! The paper's model is bufferless; its conclusion asks what buffers
//! change. We put a FIFO buffer of size `B` in front of the same link and
//! sweep `B`, comparing plain drop-tail against priority eviction (the
//! buffered adaptation of randPr).

use osp_net::buffer::{simulate_buffered, BufferPolicy};
use osp_net::trace::{onoff_trace, video_trace, VideoTraceConfig};
use osp_stats::{SeedSequence, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::pool::{draw_seeds, pool};
use crate::report::{NamedTable, Report};
use crate::Scale;

/// Runs the experiment.
pub fn run(scale: Scale, seed: u64) -> Report {
    let repeats: usize = scale.pick(3, 10);
    let evict_seeds: u64 = scale.pick(5, 20);
    let mut seeds = SeedSequence::new(seed).child("buffers");

    let mut report = Report::new(
        "buffers",
        "Open problem 2: goodput vs buffer size",
        "A FIFO buffer lets the link ride out bursts. Goodput should rise monotonically \
         with B and saturate once B covers the burst scale; priority eviction (randPr \
         adapted to buffers) should dominate drop-tail at every B on weighted traffic.",
    );

    let mut table = NamedTable::new(
        "Buffered router (8 sources, capacity 3, standard GOP; means over traces)",
        &[
            "buffer B",
            "drop-tail frames",
            "drop-tail weight",
            "priority-evict frames",
            "priority-evict weight",
            "offered frames",
        ],
    );
    let buffer_sizes: &[usize] =
        scale.pick(&[0usize, 4, 16][..], &[0usize, 1, 2, 4, 8, 16, 32, 64][..]);
    for &b in buffer_sizes {
        let mut dt_frames = Summary::new();
        let mut dt_weight = Summary::new();
        let mut pe_frames = Summary::new();
        let mut pe_weight = Summary::new();
        let mut offered = 0usize;
        // Per repeat: one trace seed, then the eviction seeds — drawn
        // sequentially (the pre-batching order), simulated in parallel.
        let repeat_seeds: Vec<(u64, Vec<u64>)> = (0..repeats)
            .map(|_| {
                (
                    seeds.next_seed(),
                    draw_seeds(&mut seeds, evict_seeds as usize),
                )
            })
            .collect();
        let per_repeat = pool().map(&repeat_seeds, |_, (trace_seed, pe_seeds)| {
            let cfg = VideoTraceConfig {
                sources: 8,
                frames_per_source: 30,
                gop: osp_net::GopConfig::standard(),
                frame_interval: 8,
                capacity: 3,
                jitter: 0,
            };
            let mut rng = StdRng::seed_from_u64(*trace_seed);
            let trace = video_trace(&cfg, &mut rng);
            let dt = simulate_buffered(&trace, b, BufferPolicy::DropTail);
            let pe: Vec<_> = pe_seeds
                .iter()
                .map(|&seed| simulate_buffered(&trace, b, BufferPolicy::PriorityEvict { seed }))
                .collect();
            (trace.frames().len(), dt, pe)
        });
        for (frames, dt, pe) in per_repeat {
            offered = frames;
            dt_frames.add(dt.frames_delivered as f64);
            dt_weight.add(dt.weight_delivered);
            for r in pe {
                pe_frames.add(r.frames_delivered as f64);
                pe_weight.add(r.weight_delivered);
            }
        }
        table.row(vec![
            b.to_string(),
            format!("{:.1}", dt_frames.mean()),
            format!("{:.1}", dt_weight.mean()),
            format!("{:.1}", pe_frames.mean()),
            format!("{:.1}", pe_weight.mean()),
            offered.to_string(),
        ]);
    }
    report.table(table);

    // On-off (Gilbert) traffic: long bursts, the regime where buffers pay
    // off slowest — drops concentrate inside on-periods whose length far
    // exceeds any affordable buffer.
    let mut onoff_table = NamedTable::new(
        "On-off traffic (burst rate 4, p_on→off = p_off→on = 0.05, capacity 2)",
        &[
            "buffer B",
            "drop-tail frames",
            "dropped",
            "offered frames",
            "max burst",
        ],
    );
    for &b in buffer_sizes {
        let mut frames = Summary::new();
        let mut dropped = Summary::new();
        let mut offered = 0usize;
        let mut max_burst = 0usize;
        let trace_seeds = draw_seeds(&mut seeds, repeats);
        for (n, burst, r) in pool().map(&trace_seeds, |_, &seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let trace = onoff_trace(4, 0.05, 0.05, 300, (1, 3), 2, &mut rng);
            let r = simulate_buffered(&trace, b, BufferPolicy::DropTail);
            (trace.frames().len(), trace.max_burst(), r)
        }) {
            offered = n;
            max_burst = max_burst.max(burst);
            frames.add(r.frames_delivered as f64);
            dropped.add(r.packets_dropped as f64);
        }
        onoff_table.row(vec![
            b.to_string(),
            format!("{:.1}", frames.mean()),
            format!("{:.1}", dropped.mean()),
            offered.to_string(),
            max_burst.to_string(),
        ]);
    }
    report.table(onoff_table);

    report.note(
        "Verdict criteria: both policies improve monotonically with B and converge once \
         the buffer absorbs the largest burst — buffers substitute for cleverness at the \
         cost of delay, which is the qualitative answer to the open problem. Under on-off \
         traffic the saturation point moves out with the on-period length: buffers must \
         cover the *burst duration × excess rate*, not just the instantaneous burst.",
    );
    report
}
