//! `replay` — throughput of the batch-replay engine and its hot paths.
//!
//! Not a paper theorem: this is the harness measuring itself, so replay
//! throughput (the resource every other experiment spends) is tracked
//! PR-over-PR via `BENCH_replay.json`. Three comparisons:
//!
//! 1. **engine_run** — sequential `engine::run` trials vs the same trials
//!    fanned across [`ReplayPool`] shards, asserting bit-identical
//!    outcomes while measuring the speedup;
//! 2. **poly_hash_eval** — `PolyHash::eval`'s lazy-reduction Horner fast
//!    path vs the precomputed-powers reference `eval_naive`;
//! 3. **weighted sampling** — the O(1) alias table vs the cumulative-sum
//!    binary search it replaced in the skewed generators.
//!
//! Wall-clock numbers vary with the machine; the *identity* columns must
//! read `true` everywhere. The hash and sampling speedups are algorithmic
//! and should be ≥ 1 on any quiet box; the engine_run speedup measures
//! thread-level parallelism, so expect ~1× with a single shard (pool
//! overhead only) and gains proportional to shard count beyond that.

use std::hint::black_box;
use std::time::Instant;

use osp_core::algorithms::RandPr;
use osp_core::gen::{random_instance, RandomInstanceConfig};
use osp_core::{run as engine_run, Outcome};
use osp_gf::hash::PolyHash;
use osp_stats::{AliasTable, SeedSequence};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::pool::{draw_seeds, pool};
use crate::report::{NamedTable, Report};
use crate::Scale;

/// Seconds spent in `f`.
fn timed<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

/// Runs the experiment.
pub fn run(scale: Scale, seed: u64) -> Report {
    let mut seeds = SeedSequence::new(seed).child("replay");
    let pool = pool();

    let mut report = Report::new(
        "replay",
        "Batch replay engine and hot-path throughput",
        "The sharded ReplayPool must produce bit-identical outcomes to sequential \
         engine::run while finishing measurably faster; the PolyHash Horner fast path and \
         the alias-table sampler must agree with their naive references and beat them.",
    );

    // --- 1: engine_run — sequential vs pooled replay. ---
    let mut engine_table = NamedTable::new(
        "engine_run: sequential replay vs ReplayPool",
        &[
            "workload",
            "trials",
            "sequential s",
            "batch s",
            "speedup",
            "shards",
            "bit-identical",
        ],
    );
    let grid: &[(usize, usize, u32, u32)] = scale.pick(
        &[(100usize, 1_000usize, 4u32, 48u32)][..],
        &[
            (100, 1_000, 4, 512),
            (500, 5_000, 8, 256),
            (2_000, 20_000, 16, 64),
        ][..],
    );
    let mut all_identical = true;
    for &(m, n, sigma, trials) in grid {
        let mut rng = StdRng::seed_from_u64(seeds.next_seed());
        let inst = random_instance(&RandomInstanceConfig::unweighted(m, n, sigma), &mut rng)
            .expect("feasible bench workload");
        let trial_seeds = draw_seeds(&mut seeds, trials as usize);
        // Shared boxes throttle unpredictably, so alternate the two legs
        // over several rounds and keep each leg's minimum — the standard
        // noise-robust wall-clock estimator.
        let rounds: usize = scale.pick(2, 3);
        let mut t_seq = f64::INFINITY;
        let mut t_batch = f64::INFINITY;
        let mut identical = true;
        for _ in 0..rounds {
            // The sequential baseline is the pre-batching harness path:
            // one boxed algorithm per trial through plain engine::run.
            let (t, sequential) = timed(|| {
                trial_seeds
                    .iter()
                    .map(|&s| {
                        let mut alg: Box<dyn osp_core::OnlineAlgorithm> =
                            Box::new(RandPr::from_seed(s));
                        engine_run(&inst, alg.as_mut()).unwrap()
                    })
                    .collect::<Vec<Outcome>>()
            });
            t_seq = t_seq.min(t);
            let (t, batched) =
                timed(|| pool.run_seeds(&inst, &trial_seeds, &|s| Box::new(RandPr::from_seed(s))));
            t_batch = t_batch.min(t);
            identical &= sequential == batched;
        }
        all_identical &= identical;
        engine_table.row(vec![
            format!("m={m} n={n} σ={sigma}"),
            trials.to_string(),
            format!("{t_seq:.3}"),
            format!("{t_batch:.3}"),
            format!("{:.2}×", t_seq / t_batch.max(1e-9)),
            pool.shards().to_string(),
            identical.to_string(),
        ]);
    }
    report.table(engine_table);

    // --- 2: poly_hash_eval — naive powers vs lazy-reduction Horner. ---
    let mut hash_table = NamedTable::new(
        "poly_hash_eval: precomputed-powers reference vs Horner fast path",
        &[
            "independence",
            "evals",
            "naive ns/eval",
            "fast ns/eval",
            "speedup",
            "agree",
        ],
    );
    let evals: u64 = scale.pick(200_000, 2_000_000);
    let mut all_agree = true;
    for independence in [2usize, 8, 64] {
        let h = PolyHash::new(independence, seeds.next_seed());
        let (t_naive, sum_naive) = timed(|| {
            (0..evals)
                .map(|x| h.eval_naive(black_box(x)))
                .fold(0u64, u64::wrapping_add)
        });
        let (t_fast, sum_fast) = timed(|| {
            (0..evals)
                .map(|x| h.eval(black_box(x)))
                .fold(0u64, u64::wrapping_add)
        });
        let agree = sum_naive == sum_fast;
        all_agree &= agree;
        hash_table.row(vec![
            format!("{independence}-wise"),
            evals.to_string(),
            format!("{:.1}", t_naive * 1e9 / evals as f64),
            format!("{:.1}", t_fast * 1e9 / evals as f64),
            format!("{:.2}×", t_naive / t_fast.max(1e-12)),
            agree.to_string(),
        ]);
    }
    report.table(hash_table);

    // --- 3: weighted sampling — cumulative binary search vs alias table. ---
    let mut sample_table = NamedTable::new(
        "weighted sampling: cumulative-sum binary search vs alias table",
        &[
            "buckets",
            "draws",
            "cumulative ns/draw",
            "alias ns/draw",
            "speedup",
        ],
    );
    let draws: u64 = scale.pick(200_000, 2_000_000);
    for buckets in [256usize, 4096] {
        // The Zipf popularity vector the skewed generator uses.
        let weights: Vec<f64> = (0..buckets).map(|j| ((j + 1) as f64).powf(-1.2)).collect();
        let sample_seed = seeds.next_seed();
        let (t_cum, sum_cum) = timed(|| {
            let mut cumulative = Vec::with_capacity(buckets);
            let mut total = 0.0f64;
            for &w in &weights {
                total += w;
                cumulative.push(total);
            }
            let mut rng = StdRng::seed_from_u64(sample_seed);
            (0..draws)
                .map(|_| {
                    let x = rng.gen::<f64>() * total;
                    cumulative.partition_point(|&c| c < x).min(buckets - 1)
                })
                .fold(0usize, usize::wrapping_add)
        });
        let (t_alias, sum_alias) = timed(|| {
            let table = AliasTable::new(&weights).unwrap();
            let mut rng = StdRng::seed_from_u64(sample_seed);
            (0..draws)
                .map(|_| table.sample(&mut rng))
                .fold(0usize, usize::wrapping_add)
        });
        black_box((sum_cum, sum_alias));
        sample_table.row(vec![
            buckets.to_string(),
            draws.to_string(),
            format!("{:.1}", t_cum * 1e9 / draws as f64),
            format!("{:.1}", t_alias * 1e9 / draws as f64),
            format!("{:.2}×", t_cum / t_alias.max(1e-12)),
        ]);
    }
    report.table(sample_table);

    report.note(format!(
        "Replay pool: {} shards (override with OSP_REPLAY_SHARDS; outcomes are \
         shard-count-invariant by construction, see tests/batch_equivalence.rs).{}",
        pool.shards(),
        if pool.shards() == 1 {
            " With one shard the engine_run comparison measures pool overhead only \
             (expect ~1×); replay throughput scales with shard count on multi-core \
             machines."
        } else {
            ""
        }
    ));
    report.note(if all_identical && all_agree {
        "Verdict: batch replay is bit-identical to sequential replay and the hash fast \
         path agrees with the naive reference; timings above are the tracked baseline."
            .to_string()
    } else {
        "Verdict: an identity check FAILED — the batch engine or hash fast path diverged."
            .to_string()
    });
    report
}
