//! `replay` — throughput of the batch-replay engine and its hot paths.
//!
//! Not a paper theorem: this is the harness measuring itself, so replay
//! throughput (the resource every other experiment spends) is tracked
//! PR-over-PR via `BENCH_replay.json`. Nine comparisons:
//!
//! 1. **engine_run** — sequential `engine::run` trials vs the same trials
//!    fanned across [`ReplayPool`] shards, asserting bit-identical
//!    outcomes while measuring the speedup; rows are identity-tracked by
//!    workload so the sequential arrivals/sec column is comparable
//!    PR-over-PR (the flat-CSR + `decide_into` hot path is measured here);
//! 2. **replay_throughput** — the same sequential-vs-sharded comparison
//!    per *algorithm family*, identity-tracked by `(workload, algorithm)`;
//! 3. **poly_hash_eval** — `PolyHash::eval`'s 4-way unrolled
//!    lazy-reduction fast path vs the single-chain Horner it replaced
//!    (`eval_horner`) vs the precomputed-powers reference `eval_naive`;
//! 4. **weighted sampling** — the O(1) alias table vs the cumulative-sum
//!    binary search it replaced in the skewed generators;
//! 5. **streaming** — the fused generate-as-you-replay pipeline
//!    (`UniformSource` → `run_source`) vs materialize-then-replay
//!    (`random_instance` → `run`) on identical scenarios: end-to-end
//!    wall clock, plus the resident bytes each pipeline holds (the CSR
//!    arena vs the source's O(m) state — the `mem ratio` column is
//!    deterministic and ratio-guarded in CI);
//! 6. **distributed** — the same `JobSpec` work-list through sequential
//!    `run_spec`, the thread dispatcher (`SpecPool`) and `osp-worker`
//!    child processes (`ProcessPool`), asserting all three bit-identical
//!    (the `bit-identical` column CI's `bench_guard` requires to exist
//!    and read `true`) while measuring the process-boundary cost. Wall
//!    numbers here are machine-bound (workers default to the core
//!    count; override with `OSP_WORKERS`), so the `speedup` column is
//!    informational, not ratio-guarded;
//! 7. **socket** — the same work-list again, this time across a loopback
//!    fleet of spawned `osp-worker --listen` processes ([`SocketPool`]:
//!    handshake, heartbeats, timeout/re-dispatch), asserting the fleet
//!    bit-identical to sequential `run_spec` — including one row where a
//!    seeded `OSP_FAULT=die:5` kills a worker mid-batch and its
//!    unanswered jobs are re-dispatched to the survivors (that row's
//!    identity cell also requires the killed worker to have exited with
//!    the fault code 86). Worker stderr goes to `socket-worker-logs/`
//!    for CI to upload on failure. Like `distributed`, only the identity
//!    booleans are guarded;
//! 8. **kernel** — `PolyHash::eval_batch`'s transposed multi-key lanes vs
//!    scalar `eval` over `m` keys (the single-threaded, ratio-guarded
//!    `speedup` column), and `HashRandPr`'s `m`-slot table fill serially
//!    vs through the `OSP_PROLOGUE_THREADS` prologue seam (machine-bound
//!    wall ratio, so the `begin speedup` column is informational); the
//!    `bit-identical` cell asserts batch ≡ scalar key-for-key *and*
//!    serial ≡ sharded table slot-for-slot;
//! 9. **pipeline** — ONE huge streamed replay three ways: sequential
//!    `run_source`, the pipelined session (`run_source_parallel_with`,
//!    producer thread + chunk ring) with the sharded decision kernel
//!    pinned off, and the full pipelined + sharded-decide path. Narrow
//!    rows stream n ∈ {10⁶, 10⁷, 10⁸} arrivals; a wide-σ row crosses
//!    `SHARDED_DECIDE_MIN` so the sharded kernel actually runs. Every
//!    parallel leg must be bit-identical to its sequential leg (the
//!    guarded cells); thread count follows the `OSP_REPLAY_THREADS`
//!    policy, so walls are machine-bound (1 thread ⇒ the exact serial
//!    fallback, 1 core ⇒ ~1×) and the speedup column is informational.
//!
//! Wall-clock numbers vary with the machine; the *identity* columns must
//! read `true` everywhere (CI's `bench_guard` enforces this, and holds the
//! single-threaded algorithmic speedups to ≥ 0.9× their committed
//! baseline). The hash and sampling speedups are algorithmic and should be
//! ≥ 1 on any quiet box; the engine_run/replay_throughput speedups measure
//! thread-level parallelism, so expect ~1× with a single shard (pool
//! overhead only) and gains proportional to shard count beyond that.

use std::hint::black_box;
use std::time::Instant;

use osp_core::algorithms::{GreedyOnline, HashRandPr, RandPr, RandomAssign, TieBreak};
use osp_core::gen::{random_instance, RandomInstanceConfig, UniformSource};
use osp_core::spec::{run_spec, AlgorithmSpec, ScenarioSpec};
use osp_core::wire::socket::WorkerAddr;
use osp_core::{
    derived_jobs, run as engine_run, run_source, worker_binary, Dispatcher, OnlineAlgorithm,
    Outcome, ProcessPool, ReplayJob, SetId, SocketPool, SpecPool,
};
use osp_gf::hash::PolyHash;
use osp_net::NetResolver;
use osp_stats::{AliasTable, SeedSequence};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::pool::{draw_seeds, pool};
use crate::report::{NamedTable, Report};
use crate::Scale;

/// Seconds spent in `f`.
fn timed<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let start = Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

/// Arrivals replayed per second, as a compact human/machine-shared cell.
fn arrivals_per_sec(trials: usize, elements: usize, seconds: f64) -> String {
    format!("{:.0}", (trials * elements) as f64 / seconds.max(1e-9))
}

/// A seeded constructor for one benchmarked algorithm family.
type AlgorithmFactory = fn(u64) -> Box<dyn OnlineAlgorithm>;

/// One spawned `osp-worker --listen` child of the socket section's
/// loopback fleet: the process and its resolved address (parsed from
/// the worker's `listening on <addr>` banner). Stderr goes to
/// `<log_dir>/<name>.log` for CI to collect.
struct FleetWorker {
    child: std::process::Child,
    addr: WorkerAddr,
}

/// Spawns one `osp-worker --listen 127.0.0.1:0` child, stderr to
/// `<log_dir>/<name>.log`, optionally carrying an `OSP_FAULT` plan (the
/// ambient variable is always cleared first so only the explicit plan
/// applies).
fn spawn_worker(
    log_dir: &std::path::Path,
    name: &str,
    fault: Option<&str>,
) -> Result<FleetWorker, String> {
    let binary = worker_binary().map_err(|e| e.to_string())?;
    std::fs::create_dir_all(log_dir).map_err(|e| format!("creating {}: {e}", log_dir.display()))?;
    let log = log_dir.join(format!("{name}.log"));
    let stderr =
        std::fs::File::create(&log).map_err(|e| format!("creating {}: {e}", log.display()))?;
    let mut command = std::process::Command::new(binary);
    command
        .args(["--listen", "127.0.0.1:0"])
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::piped())
        .stderr(stderr)
        .env_remove("OSP_FAULT");
    if let Some(plan) = fault {
        command.env("OSP_FAULT", plan);
    }
    let mut child = command
        .spawn()
        .map_err(|e| format!("spawning osp-worker --listen: {e}"))?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut banner = String::new();
    std::io::BufRead::read_line(&mut std::io::BufReader::new(stdout), &mut banner)
        .map_err(|e| format!("reading worker banner: {e}"))?;
    let addr = banner
        .trim()
        .strip_prefix("listening on ")
        .ok_or_else(|| format!("unexpected worker banner {banner:?}"))
        .and_then(WorkerAddr::parse)?;
    Ok(FleetWorker { child, addr })
}

/// Waits up to ~5 s for `child` to exit on its own (a fault-killed
/// worker does, with code 86); returns its exit code, killing a child
/// that outlives the deadline.
fn reap(child: &mut std::process::Child) -> Option<i32> {
    for _ in 0..100 {
        match child.try_wait() {
            Ok(Some(status)) => return status.code(),
            Ok(None) => std::thread::sleep(std::time::Duration::from_millis(50)),
            Err(_) => break,
        }
    }
    let _ = child.kill();
    let _ = child.wait();
    None
}

/// Runs the experiment.
pub fn run(scale: Scale, seed: u64) -> Report {
    let mut seeds = SeedSequence::new(seed).child("replay");
    let pool = pool();

    let mut report = Report::new(
        "replay",
        "Batch replay engine and hot-path throughput",
        "The sharded ReplayPool must produce bit-identical outcomes to sequential \
         engine::run while finishing measurably faster; the PolyHash unrolled fast path and \
         the alias-table sampler must agree with their naive references and beat them.",
    );

    // --- 1: engine_run — sequential vs pooled replay. ---
    let mut engine_table = NamedTable::new(
        "engine_run: sequential replay vs ReplayPool",
        &[
            "workload",
            "trials",
            "sequential s",
            "batch s",
            "seq arrivals/s",
            "batch arrivals/s",
            "speedup",
            "shards",
            "bit-identical",
        ],
    );
    let grid: &[(usize, usize, u32, u32)] = scale.pick(
        &[(100usize, 1_000usize, 4u32, 48u32)][..],
        &[
            (100, 1_000, 4, 512),
            (500, 5_000, 8, 256),
            (2_000, 20_000, 16, 64),
        ][..],
    );
    let mut all_identical = true;
    for &(m, n, sigma, trials) in grid {
        let mut rng = StdRng::seed_from_u64(seeds.next_seed());
        let inst = random_instance(&RandomInstanceConfig::unweighted(m, n, sigma), &mut rng)
            .expect("feasible bench workload");
        let trial_seeds = draw_seeds(&mut seeds, trials as usize);
        // Shared boxes throttle unpredictably, so alternate the two legs
        // over several rounds and keep each leg's minimum — the standard
        // noise-robust wall-clock estimator.
        let rounds: usize = scale.pick(2, 3);
        let mut t_seq = f64::INFINITY;
        let mut t_batch = f64::INFINITY;
        let mut identical = true;
        for _ in 0..rounds {
            // The sequential baseline is the pre-batching harness path:
            // one boxed algorithm per trial through plain engine::run.
            let (t, sequential) = timed(|| {
                trial_seeds
                    .iter()
                    .map(|&s| {
                        let mut alg: Box<dyn osp_core::OnlineAlgorithm> =
                            Box::new(RandPr::from_seed(s));
                        engine_run(&inst, alg.as_mut()).unwrap()
                    })
                    .collect::<Vec<Outcome>>()
            });
            t_seq = t_seq.min(t);
            let (t, batched) =
                timed(|| pool.run_seeds(&inst, &trial_seeds, &|s| Box::new(RandPr::from_seed(s))));
            t_batch = t_batch.min(t);
            identical &= sequential == batched;
        }
        all_identical &= identical;
        engine_table.row(vec![
            format!("m={m} n={n} σ={sigma}"),
            trials.to_string(),
            format!("{t_seq:.3}"),
            format!("{t_batch:.3}"),
            arrivals_per_sec(trials as usize, n, t_seq),
            arrivals_per_sec(trials as usize, n, t_batch),
            format!("{:.2}×", t_seq / t_batch.max(1e-9)),
            pool.shards().to_string(),
            identical.to_string(),
        ]);
    }
    report.table(engine_table);

    // --- 2: replay_throughput — per-algorithm arrivals/sec. ---
    let mut alg_table = NamedTable::new(
        "replay_throughput: per-algorithm sequential vs sharded arrivals/sec",
        &[
            "workload × algorithm",
            "trials",
            "seq arrivals/s",
            "sharded arrivals/s",
            "speedup",
            "shards",
            "bit-identical",
        ],
    );
    let families: &[(&str, AlgorithmFactory)] = &[
        ("randPr", |s| Box::new(RandPr::from_seed(s))),
        ("hashPr8", |s| Box::new(HashRandPr::new(8, s))),
        ("greedy[weight]", |_| {
            Box::new(GreedyOnline::new(TieBreak::ByWeight))
        }),
        ("random-assign", |s| Box::new(RandomAssign::from_seed(s))),
    ];
    let (m, n, sigma) = (200usize, 2_000usize, 6u32);
    let trials: usize = scale.pick(32, 256);
    let mut rng = StdRng::seed_from_u64(seeds.next_seed());
    let inst = random_instance(&RandomInstanceConfig::unweighted(m, n, sigma), &mut rng)
        .expect("feasible bench workload");
    let trial_seeds = draw_seeds(&mut seeds, trials);
    for (family_name, factory) in families {
        let rounds: usize = scale.pick(2, 3);
        let mut t_seq = f64::INFINITY;
        let mut t_batch = f64::INFINITY;
        let mut identical = true;
        let jobs: Vec<ReplayJob<'_>> = trial_seeds
            .iter()
            .map(|&seed| ReplayJob {
                instance: &inst,
                algorithm: 0,
                seed,
            })
            .collect();
        for _ in 0..rounds {
            let (t, sequential) = timed(|| {
                trial_seeds
                    .iter()
                    .map(|&s| engine_run(&inst, factory(s).as_mut()).unwrap())
                    .collect::<Vec<Outcome>>()
            });
            t_seq = t_seq.min(t);
            let (t, batched) = timed(|| pool.run_jobs(&jobs, &|_, s| factory(s)));
            t_batch = t_batch.min(t);
            identical &= batched
                .iter()
                .map(|r| r.as_ref().expect("built-ins emit valid decisions"))
                .eq(sequential.iter());
        }
        all_identical &= identical;
        alg_table.row(vec![
            format!("m={m} n={n} σ={sigma} × {family_name}"),
            trials.to_string(),
            arrivals_per_sec(trials, n, t_seq),
            arrivals_per_sec(trials, n, t_batch),
            format!("{:.2}×", t_seq / t_batch.max(1e-9)),
            pool.shards().to_string(),
            identical.to_string(),
        ]);
    }
    report.table(alg_table);

    // --- 3: poly_hash_eval — naive powers vs Horner vs 4-way unrolled. ---
    let mut hash_table = NamedTable::new(
        "poly_hash_eval: precomputed-powers reference vs Horner vs 4-way unrolled",
        &[
            "independence",
            "evals",
            "naive ns/eval",
            "horner ns/eval",
            "unrolled ns/eval",
            "speedup",
            "unroll gain",
            "agree",
        ],
    );
    // The ns-level ratios here feed the CI bench_guard, so even the quick
    // scale measures enough work (and enough rounds) to keep them stable
    // on a noisy shared runner.
    let evals: u64 = scale.pick(1_000_000, 2_000_000);
    let mut all_agree = true;
    for independence in [2usize, 8, 16, 64] {
        let h = PolyHash::new(independence, seeds.next_seed());
        // Min-of-rounds with the legs interleaved, like the engine tables:
        // a throttling spike then hits one round of one leg, not a whole
        // column.
        let rounds: usize = scale.pick(3, 3);
        let (mut t_naive, mut t_horner, mut t_fast) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut agree = true;
        for _ in 0..rounds {
            let (t, sum_naive) = timed(|| {
                (0..evals)
                    .map(|x| h.eval_naive(black_box(x)))
                    .fold(0u64, u64::wrapping_add)
            });
            t_naive = t_naive.min(t);
            let (t, sum_horner) = timed(|| {
                (0..evals)
                    .map(|x| h.eval_horner(black_box(x)))
                    .fold(0u64, u64::wrapping_add)
            });
            t_horner = t_horner.min(t);
            let (t, sum_fast) = timed(|| {
                (0..evals)
                    .map(|x| h.eval(black_box(x)))
                    .fold(0u64, u64::wrapping_add)
            });
            t_fast = t_fast.min(t);
            agree &= sum_naive == sum_fast && sum_naive == sum_horner;
        }
        all_agree &= agree;
        hash_table.row(vec![
            format!("{independence}-wise"),
            evals.to_string(),
            format!("{:.1}", t_naive * 1e9 / evals as f64),
            format!("{:.1}", t_horner * 1e9 / evals as f64),
            format!("{:.1}", t_fast * 1e9 / evals as f64),
            format!("{:.2}×", t_naive / t_fast.max(1e-12)),
            format!("{:.2}×", t_horner / t_fast.max(1e-12)),
            agree.to_string(),
        ]);
    }
    report.table(hash_table);

    // --- 4: weighted sampling — cumulative binary search vs alias table. ---
    let mut sample_table = NamedTable::new(
        "weighted sampling: cumulative-sum binary search vs alias table",
        &[
            "buckets",
            "draws",
            "cumulative ns/draw",
            "alias ns/draw",
            "speedup",
        ],
    );
    let draws: u64 = scale.pick(1_000_000, 2_000_000);
    for buckets in [256usize, 4096] {
        // The Zipf popularity vector the skewed generator uses.
        let weights: Vec<f64> = (0..buckets).map(|j| ((j + 1) as f64).powf(-1.2)).collect();
        let sample_seed = seeds.next_seed();
        let rounds: usize = scale.pick(3, 3);
        let (mut t_cum_min, mut t_alias_min) = (f64::INFINITY, f64::INFINITY);
        let mut sums = (0usize, 0usize);
        for _ in 0..rounds {
            let (t_cum, sum_cum) = timed(|| {
                let mut cumulative = Vec::with_capacity(buckets);
                let mut total = 0.0f64;
                for &w in &weights {
                    total += w;
                    cumulative.push(total);
                }
                let mut rng = StdRng::seed_from_u64(sample_seed);
                (0..draws)
                    .map(|_| {
                        let x = rng.gen::<f64>() * total;
                        cumulative.partition_point(|&c| c < x).min(buckets - 1)
                    })
                    .fold(0usize, usize::wrapping_add)
            });
            t_cum_min = t_cum_min.min(t_cum);
            let (t_alias, sum_alias) = timed(|| {
                let table = AliasTable::new(&weights).unwrap();
                let mut rng = StdRng::seed_from_u64(sample_seed);
                (0..draws)
                    .map(|_| table.sample(&mut rng))
                    .fold(0usize, usize::wrapping_add)
            });
            t_alias_min = t_alias_min.min(t_alias);
            sums = (sum_cum, sum_alias);
        }
        black_box(sums);
        sample_table.row(vec![
            buckets.to_string(),
            draws.to_string(),
            format!("{:.1}", t_cum_min * 1e9 / draws as f64),
            format!("{:.1}", t_alias_min * 1e9 / draws as f64),
            format!("{:.2}×", t_cum_min / t_alias_min.max(1e-12)),
        ]);
    }
    report.table(sample_table);

    // --- 5: streaming — fused sources vs materialize-then-replay. ---
    let mut stream_table = NamedTable::new(
        "streaming: fused UniformSource vs materialize-then-replay",
        &[
            "workload",
            "trials",
            "materialize s",
            "streaming s",
            "wall speedup",
            "mat arrivals/s",
            "stream arrivals/s",
            "instance bytes",
            "source bytes",
            "mem ratio",
            "bit-identical",
        ],
    );
    let stream_grid: &[(usize, usize, u32, u32)] = scale.pick(
        &[(100usize, 1_000usize, 4u32, 16u32)][..],
        &[
            (100, 1_000, 4, 64),
            (200, 20_000, 8, 16),
            (500, 100_000, 8, 4),
        ][..],
    );
    let mut all_stream_identical = true;
    for &(m, n, sigma, trials) in stream_grid {
        let cfg = RandomInstanceConfig::unweighted(m, n, sigma);
        // One seed per trial drives both the generator and the algorithm,
        // identically in both legs — so the two pipelines must produce the
        // same outcome for every trial.
        let trial_seeds = draw_seeds(&mut seeds, trials as usize);
        let rounds: usize = scale.pick(2, 3);
        let mut t_mat = f64::INFINITY;
        let mut t_stream = f64::INFINITY;
        let mut identical = true;
        for _ in 0..rounds {
            let (t, materialized) = timed(|| {
                trial_seeds
                    .iter()
                    .map(|&s| {
                        let inst = random_instance(&cfg, &mut StdRng::seed_from_u64(s)).unwrap();
                        engine_run(&inst, &mut RandPr::from_seed(s)).unwrap()
                    })
                    .collect::<Vec<Outcome>>()
            });
            t_mat = t_mat.min(t);
            let (t, streamed) = timed(|| {
                trial_seeds
                    .iter()
                    .map(|&s| {
                        let mut src = UniformSource::new(&cfg, s).unwrap();
                        run_source(&mut src, &mut RandPr::from_seed(s)).unwrap()
                    })
                    .collect::<Vec<Outcome>>()
            });
            t_stream = t_stream.min(t);
            identical &= materialized == streamed;
        }
        all_stream_identical &= identical;
        // Resident bytes, from the first trial's scenario (deterministic
        // given the seed sequence, so stable PR-over-PR).
        let instance_bytes = random_instance(&cfg, &mut StdRng::seed_from_u64(trial_seeds[0]))
            .unwrap()
            .heap_bytes();
        let source_bytes = UniformSource::new(&cfg, trial_seeds[0])
            .unwrap()
            .state_bytes();
        stream_table.row(vec![
            format!("m={m} n={n} σ={sigma}"),
            trials.to_string(),
            format!("{t_mat:.3}"),
            format!("{t_stream:.3}"),
            format!("{:.2}×", t_mat / t_stream.max(1e-9)),
            arrivals_per_sec(trials as usize, n, t_mat),
            arrivals_per_sec(trials as usize, n, t_stream),
            instance_bytes.to_string(),
            source_bytes.to_string(),
            format!("{:.2}×", instance_bytes as f64 / source_bytes.max(1) as f64),
            identical.to_string(),
        ]);
    }
    report.table(stream_table);

    // --- 6: distributed — one JobSpec work-list, three backends. ---
    let mut dist_table = NamedTable::new(
        "distributed: JobSpec fan-out — sequential vs threads vs osp-worker processes",
        &[
            "workload × algorithm",
            "jobs",
            "sequential s",
            "threads s",
            "processes s",
            "speedup",
            "shards",
            "workers",
            "bit-identical",
        ],
    );
    let mut all_dist_identical = true;
    match ProcessPool::from_env() {
        Err(e) => {
            all_dist_identical = false;
            report.note(format!(
                "distributed: SKIPPED — {e}. Build the worker \
                 (`cargo build --release --bin osp-worker`) and regenerate; \
                 bench_guard treats the missing section as a failure."
            ));
        }
        Ok(procs) => {
            let threads = SpecPool::new(pool.clone(), NetResolver);
            let (m, n, sigma) = (200usize, 2_000usize, 6u32);
            let uniform = ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(m, n, sigma));
            let video = ScenarioSpec::VideoTrace {
                sources: 8,
                frames_per_source: scale.pick(20, 60),
                frame_interval: 8,
                capacity: 4,
                jitter: 2,
            };
            let trials: u64 = scale.pick(8, 64);
            let roster: &[(&ScenarioSpec, AlgorithmSpec)] = &[
                (&uniform, AlgorithmSpec::RandPr),
                (&uniform, AlgorithmSpec::HashRandPr { independence: 8 }),
                (
                    &uniform,
                    AlgorithmSpec::Greedy {
                        tie_break: TieBreak::ByWeight,
                    },
                ),
                (&uniform, AlgorithmSpec::RandomAssign),
                (&video, AlgorithmSpec::TailDrop),
                (&video, AlgorithmSpec::RandomDrop),
            ];
            for (scenario, algorithm) in roster {
                let jobs = derived_jobs(scenario, algorithm, seeds.next_seed(), trials);
                let rounds: usize = scale.pick(2, 3);
                let mut t_seq = f64::INFINITY;
                let mut t_threads = f64::INFINITY;
                let mut t_procs = f64::INFINITY;
                let mut identical = true;
                for _ in 0..rounds {
                    let (t, sequential) = timed(|| {
                        jobs.iter()
                            .map(|j| run_spec(j, &NetResolver).unwrap())
                            .collect::<Vec<Outcome>>()
                    });
                    t_seq = t_seq.min(t);
                    let (t, threaded) = timed(|| threads.run_specs(&jobs));
                    t_threads = t_threads.min(t);
                    let (t, distributed) = timed(|| procs.run_specs(&jobs));
                    t_procs = t_procs.min(t);
                    // A per-job Err (e.g. a worker killed mid-run) is an
                    // identity failure to report, not a reason to abort
                    // the experiment — the guard then flags the `false`
                    // cell through its designed channel.
                    let matches = |got: &[Result<Outcome, osp_core::Error>]| {
                        got.len() == sequential.len()
                            && got
                                .iter()
                                .zip(&sequential)
                                .all(|(g, w)| g.as_ref() == Ok(w))
                    };
                    identical &= matches(&threaded) && matches(&distributed);
                }
                all_dist_identical &= identical;
                let workload = match scenario {
                    ScenarioSpec::Uniform(_) => format!("m={m} n={n} σ={sigma}"),
                    other => other.label(),
                };
                dist_table.row(vec![
                    format!("{workload} × {}", algorithm.label()),
                    trials.to_string(),
                    format!("{t_seq:.3}"),
                    format!("{t_threads:.3}"),
                    format!("{t_procs:.3}"),
                    format!("{:.2}×", t_seq / t_procs.max(1e-9)),
                    threads.lanes().to_string(),
                    procs.workers().to_string(),
                    identical.to_string(),
                ]);
            }
            // The env-selected backend spec-shaped work-lists get by
            // default (the table above measures both backends explicitly
            // so its rows stay comparable regardless of the selection).
            let selected = crate::pool::dispatcher();
            report.note(format!(
                "distributed: the same serialized JobSpecs replayed three ways — in-process, \
                 across {} thread shard(s), and across {} osp-worker process(es) fed \
                 length-prefixed frames over pipes. Outcomes (incl. DecisionLog and died_at) \
                 must be bit-identical on every row; wall clocks include \
                 serialize/spawn/pipe overhead and scale with the machine, so only the \
                 identity column is guarded. Spec-shaped fan-out obtains its backend from \
                 osp_bench::pool::dispatcher() — OSP_DISPATCH currently selects the {} \
                 backend with {} lane(s).",
                threads.lanes(),
                procs.workers(),
                selected.backend(),
                selected.lanes(),
            ));
        }
    }
    report.table(dist_table);

    // --- 7: socket — the work-list across a loopback worker fleet. ---
    let mut socket_table = NamedTable::new(
        "socket: JobSpec fan-out — sequential vs a loopback osp-worker --listen fleet",
        &[
            "workload × algorithm",
            "jobs",
            "sequential s",
            "fleet s",
            "speedup",
            "workers",
            "bit-identical",
        ],
    );
    let mut all_socket_identical = true;
    let log_dir = std::path::Path::new("socket-worker-logs");
    let fleet: Result<Vec<FleetWorker>, String> = (0..3)
        .map(|i| spawn_worker(log_dir, &format!("worker-{i}"), None))
        .collect();
    match fleet {
        Err(e) => {
            all_socket_identical = false;
            report.note(format!(
                "socket: SKIPPED — {e}. Build the worker \
                 (`cargo build --release --bin osp-worker`) and regenerate; \
                 bench_guard treats the missing section as a failure."
            ));
        }
        Ok(mut fleet) => {
            let addrs: Vec<WorkerAddr> = fleet.iter().map(|w| w.addr.clone()).collect();
            let pool = SocketPool::new(addrs);
            let (m, n, sigma) = (200usize, 2_000usize, 6u32);
            let uniform = ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(m, n, sigma));
            let video = ScenarioSpec::VideoTrace {
                sources: 8,
                frames_per_source: scale.pick(20, 60),
                frame_interval: 8,
                capacity: 4,
                jitter: 2,
            };
            let trials: u64 = scale.pick(8, 64);
            let roster: &[(&ScenarioSpec, AlgorithmSpec)] = &[
                (&uniform, AlgorithmSpec::RandPr),
                (&uniform, AlgorithmSpec::HashRandPr { independence: 8 }),
                (&video, AlgorithmSpec::TailDrop),
                (&video, AlgorithmSpec::RandomDrop),
            ];
            for (scenario, algorithm) in roster {
                let jobs = derived_jobs(scenario, algorithm, seeds.next_seed(), trials);
                let rounds: usize = scale.pick(2, 3);
                let mut t_seq = f64::INFINITY;
                let mut t_fleet = f64::INFINITY;
                let mut identical = true;
                for _ in 0..rounds {
                    let (t, sequential) = timed(|| {
                        jobs.iter()
                            .map(|j| run_spec(j, &NetResolver).unwrap())
                            .collect::<Vec<Outcome>>()
                    });
                    t_seq = t_seq.min(t);
                    let (t, fleet_out) = timed(|| pool.run_specs(&jobs));
                    t_fleet = t_fleet.min(t);
                    identical &= fleet_out.len() == sequential.len()
                        && fleet_out
                            .iter()
                            .zip(&sequential)
                            .all(|(g, w)| g.as_ref() == Ok(w));
                }
                all_socket_identical &= identical;
                let workload = match scenario {
                    ScenarioSpec::Uniform(_) => format!("m={m} n={n} σ={sigma}"),
                    other => other.label(),
                };
                socket_table.row(vec![
                    format!("{workload} × {}", algorithm.label()),
                    trials.to_string(),
                    format!("{t_seq:.3}"),
                    format!("{t_fleet:.3}"),
                    format!("{:.2}×", t_seq / t_fleet.max(1e-9)),
                    pool.lanes().to_string(),
                    identical.to_string(),
                ]);
            }
            for worker in &mut fleet {
                let _ = worker.child.kill();
                let _ = worker.child.wait();
            }

            // The fault row: a fresh mini-fleet whose first worker dies
            // after 5 answered jobs (OSP_FAULT=die:5, mid-chunk), its
            // leftovers re-dispatched to the two survivors. One
            // measurement pass — the kill is once-per-process. The
            // identity cell requires both bit-identical outcomes AND the
            // planned death (exit code 86).
            let fault_trials: u64 = scale.pick(18, 48);
            let fault_fleet: Result<Vec<FleetWorker>, String> = ["die:5", "", ""]
                .iter()
                .enumerate()
                .map(|(i, plan)| {
                    spawn_worker(
                        log_dir,
                        &format!("fault-worker-{i}"),
                        (!plan.is_empty()).then_some(plan),
                    )
                })
                .collect();
            match fault_fleet {
                Err(e) => {
                    all_socket_identical = false;
                    report.note(format!("socket fault row: SKIPPED — {e}."));
                }
                Ok(mut fleet) => {
                    let pool = SocketPool::new(fleet.iter().map(|w| w.addr.clone()).collect());
                    let jobs = derived_jobs(
                        &uniform,
                        &AlgorithmSpec::RandPr,
                        seeds.next_seed(),
                        fault_trials,
                    );
                    let (t_seq, sequential) = timed(|| {
                        jobs.iter()
                            .map(|j| run_spec(j, &NetResolver).unwrap())
                            .collect::<Vec<Outcome>>()
                    });
                    let (t_fleet, fleet_out) = timed(|| pool.run_specs(&jobs));
                    let outcomes_identical = fleet_out.len() == sequential.len()
                        && fleet_out
                            .iter()
                            .zip(&sequential)
                            .all(|(g, w)| g.as_ref() == Ok(w));
                    let fault_fired = reap(&mut fleet[0].child) == Some(86);
                    for worker in fleet.iter_mut().skip(1) {
                        let _ = worker.child.kill();
                        let _ = worker.child.wait();
                    }
                    let identical = outcomes_identical && fault_fired;
                    all_socket_identical &= identical;
                    socket_table.row(vec![
                        format!("m={m} n={n} σ={sigma} × randPr, die:5 kills worker 1 of 3"),
                        fault_trials.to_string(),
                        format!("{t_seq:.3}"),
                        format!("{t_fleet:.3}"),
                        format!("{:.2}×", t_seq / t_fleet.max(1e-9)),
                        "3".to_string(),
                        identical.to_string(),
                    ]);
                }
            }
            report.note(format!(
                "socket: the same serialized JobSpecs across 3 spawned `osp-worker --listen` \
                 processes on loopback — handshake, windowed in-band heartbeats, per-frame \
                 read deadlines, and (in the fault row) mid-batch death with re-dispatch to \
                 the survivors; worker stderr is under {}/. Only the identity booleans are \
                 guarded: wall clocks include connect/serialize/kernel-socket overhead and \
                 scale with the machine — in particular, under 1-core CPU affinity (taskset, \
                 cgroup quota, CI runners) the fleet serializes against the sequential leg \
                 and the speedup column reads ≲ 1× by construction.",
                log_dir.display()
            ));
        }
    }
    report.table(socket_table);

    // --- 8: kernel — transposed eval_batch vs scalar eval, and the sharded
    // table-build prologue vs the serial begin. ---
    let mut kernel_table = NamedTable::new(
        "kernel: transposed eval_batch vs scalar eval; sharded prologue vs serial begin",
        &[
            "m",
            "scalar ns/eval",
            "batch ns/eval",
            "speedup",
            "serial begin s",
            "parallel begin s",
            "begin speedup",
            "threads",
            "bit-identical",
        ],
    );
    // The 64-wise family: wide enough that the per-key work dwarfs the
    // transpose overhead, and the degree the paper's k_max·σ_max guidance
    // actually asks for at realistic loads.
    let kernel_independence = 64usize;
    let kernel_seed = seeds.next_seed();
    let kernel_grid: &[usize] = scale.pick(
        &[10_000usize, 1_000_000][..],
        &[10_000, 1_000_000, 10_000_000][..],
    );
    let prologue_threads = osp_core::engine::prologue::threads_from_env();
    let mut all_kernel_identical = true;
    for &m in kernel_grid {
        let h = PolyHash::new(kernel_independence, kernel_seed);
        const CHUNK: usize = 64;
        // More rounds than the other sections: the ns-level scalar/batch
        // ratio is ratio-guarded, and min-of-rounds with interleaved legs
        // is what keeps it stable on a noisy shared runner.
        let rounds: usize = scale.pick(5, 7);
        let (mut t_scalar, mut t_batch) = (f64::INFINITY, f64::INFINITY);
        let mut sums_agree = true;
        for _ in 0..rounds {
            let (t, sum_scalar) = timed(|| {
                (0..m as u64)
                    .map(|x| h.eval(black_box(x)))
                    .fold(0u64, u64::wrapping_add)
            });
            t_scalar = t_scalar.min(t);
            let (t, sum_batch) = timed(|| {
                let mut keys = [0u64; CHUNK];
                let mut raws = [0u64; CHUNK];
                let mut sum = 0u64;
                let mut base = 0u64;
                while base < m as u64 {
                    let k = CHUNK.min((m as u64 - base) as usize);
                    for (j, key) in keys[..k].iter_mut().enumerate() {
                        *key = black_box(base + j as u64);
                    }
                    h.eval_batch(&keys[..k], &mut raws[..k]);
                    sum = raws[..k].iter().fold(sum, |a, &r| a.wrapping_add(r));
                    base += k as u64;
                }
                sum
            });
            t_batch = t_batch.min(t);
            sums_agree &= sum_scalar == sum_batch;
        }
        // Key-for-key identity (not just checksum agreement), one pass.
        let mut keywise_identical = true;
        {
            let mut keys = [0u64; CHUNK];
            let mut raws = [0u64; CHUNK];
            for base in (0..m as u64).step_by(CHUNK) {
                let k = CHUNK.min((m as u64 - base) as usize);
                for (j, key) in keys[..k].iter_mut().enumerate() {
                    *key = base + j as u64;
                }
                h.eval_batch(&keys[..k], &mut raws[..k]);
                keywise_identical &= keys[..k]
                    .iter()
                    .zip(&raws[..k])
                    .all(|(&x, &r)| h.eval(x) == r);
            }
        }

        // The prologue: serial (1 thread) vs the env-policy fan-out,
        // filling hashPr's m-slot priority table over synthetic mixed
        // weights. Bit-identity of the two tables is the guarded claim;
        // the wall ratio is machine-bound (1 core ⇒ ~1×), hence the
        // unguarded `begin speedup` column name.
        let sets: Vec<osp_core::SetMeta> = (0..m)
            .map(|i| osp_core::SetMeta::new(0.5 + (i % 7) as f64 * 0.25, 1))
            .collect();
        let (mut t_serial, mut t_parallel) = (f64::INFINITY, f64::INFINITY);
        let mut tables_identical = true;
        for _ in 0..rounds {
            let mut serial = HashRandPr::new(8, kernel_seed);
            let (t, ()) = timed(|| serial.begin_with_threads(&sets, 1));
            t_serial = t_serial.min(t);
            let mut parallel = HashRandPr::new(8, kernel_seed);
            let (t, ()) = timed(|| parallel.begin_with_threads(&sets, prologue_threads));
            t_parallel = t_parallel.min(t);
            tables_identical &= (0..m)
                .all(|i| serial.priority(SetId(i as u32)) == parallel.priority(SetId(i as u32)));
        }
        let identical = sums_agree && keywise_identical && tables_identical;
        all_kernel_identical &= identical;
        kernel_table.row(vec![
            m.to_string(),
            format!("{:.1}", t_scalar * 1e9 / m as f64),
            format!("{:.1}", t_batch * 1e9 / m as f64),
            format!("{:.2}×", t_scalar / t_batch.max(1e-12)),
            format!("{t_serial:.3}"),
            format!("{t_parallel:.3}"),
            format!("{:.2}×", t_serial / t_parallel.max(1e-9)),
            prologue_threads.to_string(),
            identical.to_string(),
        ]);
    }
    report.table(kernel_table);
    report.note(
        "kernel: eval_batch is the transposed multi-key evaluator (8/4-lane groups, one \
         branchless fold per Horner step, renormalization every 6 steps) feeding the range \
         fill and the lazy candidate scoring; its speedup over scalar eval is \
         single-threaded and algorithmic, so it is ratio-guarded like poly_hash_eval. \
         The begin columns time hashPr's m-slot table fill serially vs across the \
         OSP_PROLOGUE_THREADS prologue seam — that ratio is machine-bound (expect ~1× \
         on a 1-core runner), so only its bit-identical cell is guarded.",
    );

    // --- 9: pipeline — one huge streamed replay, serial vs pipelined vs
    // pipelined + sharded decide. ---
    let mut pipe_table = NamedTable::new(
        "pipeline: one streamed replay — serial vs pipelined session vs pipelined + sharded decide",
        &[
            "workload × algorithm",
            "arrivals",
            "serial s",
            "pipelined s",
            "pipe+shard s",
            "serial arrivals/s",
            "pipelined arrivals/s",
            "speedup",
            "threads",
            "bit-identical",
        ],
    );
    /// Pins the sharded decision kernel off (`set_decision_threads` stays
    /// the default no-op), isolating the pipelined-session leg from the
    /// sharded-decide leg on the same workload.
    struct NoShard<A>(A);
    impl<A: OnlineAlgorithm> OnlineAlgorithm for NoShard<A> {
        fn name(&self) -> String {
            self.0.name()
        }
        fn begin(&mut self, sets: &[osp_core::SetMeta]) {
            self.0.begin(sets);
        }
        fn decide_into(
            &mut self,
            arrival: &osp_core::Arrival<'_>,
            view: &osp_core::EngineView<'_>,
            out: &mut Vec<SetId>,
        ) {
            self.0.decide_into(arrival, view, out);
        }
    }
    let replay_threads = osp_core::engine::parallel::threads_from_env();
    let pipe_config = osp_core::ParallelConfig::with_threads(replay_threads);
    let mut all_pipeline_identical = true;
    {
        use osp_core::engine::parallel::run_source_parallel_with;
        use osp_core::ReplayScratch;
        // Narrow streamed rows: σ-wide arrivals stay far below
        // SHARDED_DECIDE_MIN, so the pipelined and pipe+shard legs take
        // the same decision path and the columns isolate the session
        // pipelining itself. randPr is the paper's algorithm and the
        // table-lookup (scoring-light) extreme.
        let narrow: &[usize] = scale.pick(
            &[200_000usize][..],
            &[1_000_000, 10_000_000, 100_000_000][..],
        );
        // The wide row: every arrival lists ~4–6k of the 8192 sets, so
        // the sharded kernel genuinely dispatches; lazy hashPr at the
        // paper-realistic independence 64 is the scoring-bound case the
        // SHARDED_DECIDE_MIN threshold was measured for.
        let wide_n: usize = scale.pick(800, 5_000);
        enum PipeRow {
            Narrow(usize),
            Wide(usize),
        }
        let rows: Vec<PipeRow> = narrow
            .iter()
            .map(|&n| PipeRow::Narrow(n))
            .chain(std::iter::once(PipeRow::Wide(wide_n)))
            .collect();
        let pipe_seed = seeds.next_seed();
        let mut scratch = ReplayScratch::new();
        for row in rows {
            let (label, n, cfg, lazy) = match row {
                PipeRow::Narrow(n) => (
                    format!("m=500 n={n} σ=4 × randPr"),
                    n,
                    RandomInstanceConfig::unweighted(500, n, 4),
                    false,
                ),
                PipeRow::Wide(n) => (
                    format!("m=8192 n={n} σ∈[4096,6144] × hashPr64-lazy"),
                    n,
                    RandomInstanceConfig {
                        num_sets: 8192,
                        num_elements: n,
                        load: osp_core::gen::LoadModel::Uniform { lo: 4096, hi: 6144 },
                        weights: osp_core::gen::WeightModel::Uniform { lo: 0.5, hi: 4.0 },
                        capacities: osp_core::gen::CapacityModel::Uniform { lo: 1, hi: 3 },
                    },
                    true,
                ),
            };
            let alg = |lazy: bool| -> Box<dyn OnlineAlgorithm> {
                if lazy {
                    Box::new(HashRandPr::new_lazy(64, pipe_seed))
                } else {
                    Box::new(RandPr::from_seed(pipe_seed))
                }
            };
            // The 10⁸ row replays 3 × 10⁸ arrivals per round; one round
            // keeps the full regeneration inside its time budget (the
            // wall columns are informational, not ratio-guarded).
            let rounds: usize = if n >= 50_000_000 { 1 } else { scale.pick(2, 2) };
            let mut t_serial = f64::INFINITY;
            let mut t_pipe = f64::INFINITY;
            let mut t_shard = f64::INFINITY;
            let mut identical = true;
            for _ in 0..rounds {
                let (t, serial) = timed(|| {
                    let mut src = UniformSource::new(&cfg, pipe_seed).unwrap();
                    run_source(&mut src, alg(lazy).as_mut()).unwrap()
                });
                t_serial = t_serial.min(t);
                {
                    let (t, pipelined) = timed(|| {
                        let mut src = UniformSource::new(&cfg, pipe_seed).unwrap();
                        let mut a = NoShard(alg(lazy));
                        run_source_parallel_with(&mut src, &mut a, &pipe_config, &mut scratch)
                            .unwrap()
                    });
                    t_pipe = t_pipe.min(t);
                    identical &= pipelined == serial;
                }
                {
                    let (t, sharded) = timed(|| {
                        let mut src = UniformSource::new(&cfg, pipe_seed).unwrap();
                        let mut a = alg(lazy);
                        run_source_parallel_with(&mut src, a.as_mut(), &pipe_config, &mut scratch)
                            .unwrap()
                    });
                    t_shard = t_shard.min(t);
                    identical &= sharded == serial;
                }
            }
            all_pipeline_identical &= identical;
            pipe_table.row(vec![
                label,
                n.to_string(),
                format!("{t_serial:.3}"),
                format!("{t_pipe:.3}"),
                format!("{t_shard:.3}"),
                arrivals_per_sec(1, n, t_serial),
                arrivals_per_sec(1, n, t_shard),
                format!("{:.2}×", t_serial / t_shard.max(1e-9)),
                replay_threads.to_string(),
                identical.to_string(),
            ]);
        }
    }
    report.table(pipe_table);
    report.note(format!(
        "pipeline: intra-replay parallelism on ONE instance — a producer thread drains the \
         source into a recycled chunk ring while the consumer steps the session \
         (run_source_parallel_with), and arrivals wider than SHARDED_DECIDE_MIN fan their \
         candidate scoring across {replay_threads} thread(s) before the unchanged serial \
         selection. Survivors are bit-identical to sequential run_source at any thread \
         count (the guarded cells; tests/parallel_replay.rs pins the full grid). Thread \
         count follows the OSP_REPLAY_THREADS policy — 1 selects the exact serial \
         fallback, and on a 1-core runner the wall columns read ~1× by construction, so \
         like `distributed` only the identity booleans are guarded."
    ));

    report.note(format!(
        "Replay pool: {} shards (override with OSP_REPLAY_SHARDS; outcomes are \
         shard-count-invariant by construction, see tests/batch_equivalence.rs).{}",
        pool.shards(),
        if pool.shards() == 1 {
            " With one shard the engine_run comparison measures pool overhead only \
             (expect ~1×); replay throughput scales with shard count on multi-core \
             machines."
        } else {
            ""
        }
    ));
    report.note(
        "Row identities (first column) are stable PR-over-PR; CI's bench_guard checks \
         every boolean identity column and holds the single-threaded poly_hash/sampling \
         speedups — and the streaming mem ratio — to ≥ 0.9× the committed baseline. \
         Sequential arrivals/s is the flat-CSR + decide_into hot-path number to compare \
         against the previous baseline when regenerating.",
    );
    report.note(
        "streaming: both legs regenerate the scenario per trial from the same seed — \
         materialize builds the CSR Instance then replays it, streaming fuses \
         generation into the replay loop at O(m) resident bytes (the `source bytes` \
         column), so the mem ratio grows linearly in n while outcomes stay \
         bit-identical.",
    );
    report.note(
        if all_identical
            && all_agree
            && all_stream_identical
            && all_dist_identical
            && all_socket_identical
            && all_kernel_identical
            && all_pipeline_identical
        {
            "Verdict: batch replay is bit-identical to sequential replay, fused streaming \
             is bit-identical to materialize-then-replay, distributed (process) replay and \
             the socket worker fleet — surviving an injected mid-batch kill — are \
             bit-identical to both, the hash fast path agrees with the naive \
             reference, the batched kernel and sharded prologue agree with their \
             scalar/serial references, and the pipelined session and sharded decision \
             kernel are bit-identical to sequential run_source; timings above are the \
             tracked baseline."
                .to_string()
        } else {
            "Verdict: an identity check FAILED — the batch engine, the streaming pipeline, \
             the distributed dispatch layer, the socket fleet, the hash fast path, the \
             batched kernel/prologue or the pipelined/sharded replay diverged."
                .to_string()
        },
    );
    report
}
