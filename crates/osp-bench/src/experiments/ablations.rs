//! `ablations` — the A2 design-choice studies from DESIGN.md.
//!
//! Four questions the paper's design raises but does not measure:
//!
//! 1. **Active filtering** — randPr as specified ranks dead sets too; how
//!    much does filtering to still-completable sets help?
//! 2. **Hash independence** — the analysis asks for `k·σ`-wise
//!    independence; how little is enough in practice?
//! 3. **Consistency** — what happens with a fresh coin per element
//!    instead of one priority per set? (The heart of the algorithm.)
//! 4. **Partial credit (open problem 3)** — how fast does benefit grow as
//!    the completion threshold θ drops below 1?

use osp_core::algorithms::{HashRandPr, RandPr, RandomAssign};
use osp_core::gen::{random_instance, RandomInstanceConfig};
use osp_core::{run as engine_run, InstanceBuilder, OnlineAlgorithm, SetId};
use osp_net::partial::partial_benefit;
use osp_net::policy::TailDrop;
use osp_net::trace::{video_trace, VideoTraceConfig};
use osp_net::trace_to_instance;
use osp_stats::{SeedSequence, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::pool::{draw_seeds, pool};
use crate::report::{NamedTable, Report};
use crate::Scale;

/// Runs the experiment.
pub fn run(scale: Scale, seed: u64) -> Report {
    let trials: u32 = scale.pick(200, 1000);
    let mut seeds = SeedSequence::new(seed).child("ablations");

    let mut report = Report::new(
        "ablations",
        "A2 — design-choice ablations",
        "Quantifies the contribution of each ingredient of randPr: consistent priorities, \
         activity filtering, and randomness quality; plus the θ-threshold payoff of open \
         problem 3.",
    );

    // Shared random workload.
    let cfg = RandomInstanceConfig::unweighted(60, 150, 5);
    let mut rng = StdRng::seed_from_u64(seeds.next_seed());
    let inst = random_instance(&cfg, &mut rng).expect("feasible");

    // --- 1 + 2 + 3: algorithm variants on the same instance. ---
    let mut variants = NamedTable::new(
        "Algorithm variants (m=60, n=150, σ=5; mean benefit ± CI half-width)",
        &["variant", "mean benefit", "±", "vs randPr"],
    );
    let mut results: Vec<(String, Summary)> = Vec::new();
    type VariantFactory = fn(u64) -> Box<dyn OnlineAlgorithm>;
    let variant_specs: &[(&str, VariantFactory)] = &[
        ("randPr (paper)", |s| Box::new(RandPr::from_seed(s))),
        ("randPr + active filter", |s| {
            Box::new(RandPr::with_active_filter(s))
        }),
        ("hashPr 2-wise", |s| Box::new(HashRandPr::new(2, s))),
        ("hashPr 4-wise", |s| Box::new(HashRandPr::new(4, s))),
        ("hashPr 32-wise", |s| Box::new(HashRandPr::new(32, s))),
        ("fresh coin per element", |s| {
            Box::new(RandomAssign::from_seed(s))
        }),
    ];
    for &(name, factory) in variant_specs {
        let trial_seeds = draw_seeds(&mut seeds, trials as usize);
        let mut s = Summary::new();
        for out in pool().run_seeds(&inst, &trial_seeds, &factory) {
            s.add(out.benefit());
        }
        results.push((name.to_string(), s));
    }
    let baseline = results[0].1.mean();
    for (name, s) in &results {
        variants.row(vec![
            name.clone(),
            format!("{:.2}", s.mean()),
            format!("{:.2}", s.confidence_interval(0.95).width() / 2.0),
            format!("{:+.1}%", (s.mean() / baseline - 1.0) * 100.0),
        ]);
    }
    report.table(variants);

    // --- 3b: the consistency collapse on deep frames. ---
    // One frame of k elements, each contested by σ−1 fresh singletons:
    // randPr survives ~1/(1+k(σ−1)); fresh coins survive σ^{-k}.
    let mut collapse = NamedTable::new(
        "Consistency collapse: frame survival probability (k elements, σ=4 everywhere)",
        &[
            "k",
            "randPr empirical",
            "randPr theory",
            "fresh-coin empirical",
            "fresh-coin theory",
        ],
    );
    for &k in scale.pick(&[2u32, 4][..], &[2u32, 3, 4, 6][..]) {
        let mut b = InstanceBuilder::new();
        let frame = b.add_set(1.0, k);
        for _ in 0..k {
            let mut members = vec![frame];
            for _ in 0..3 {
                members.push(b.add_set(1.0, 1));
            }
            b.add_element(1, &members);
        }
        let deep = b.build().unwrap();
        let mut rp = Summary::new();
        let mut rc = Summary::new();
        // Seeds interleave (randPr, fresh-coin) per trial, as before.
        let mut rp_seeds = Vec::with_capacity(trials as usize);
        let mut rc_seeds = Vec::with_capacity(trials as usize);
        for _ in 0..trials {
            rp_seeds.push(seeds.next_seed());
            rc_seeds.push(seeds.next_seed());
        }
        for out in pool().run_seeds(&deep, &rp_seeds, &|s| Box::new(RandPr::from_seed(s))) {
            rp.add(f64::from(u8::from(out.is_completed(SetId(0)))));
        }
        for out in pool().run_seeds(&deep, &rc_seeds, &|s| Box::new(RandomAssign::from_seed(s))) {
            rc.add(f64::from(u8::from(out.is_completed(SetId(0)))));
        }
        collapse.row(vec![
            k.to_string(),
            format!("{:.4}", rp.mean()),
            format!("{:.4}", 1.0 / (1.0 + f64::from(k) * 3.0)),
            format!("{:.4}", rc.mean()),
            format!("{:.4}", 0.25f64.powi(k as i32)),
        ]);
    }
    report.table(collapse);

    // --- 4: θ-threshold payoff (open problem 3). ---
    let mut theta_table = NamedTable::new(
        "Partial credit: benefit at completion threshold θ (video workload)",
        &["policy", "θ=1.0 (strict)", "θ=0.9", "θ=0.75", "θ=0.5"],
    );
    let vcfg = VideoTraceConfig {
        sources: 8,
        frames_per_source: 30,
        gop: osp_net::GopConfig::standard(),
        frame_interval: 8,
        capacity: 3,
        jitter: 0,
    };
    let mut rng = StdRng::seed_from_u64(seeds.next_seed());
    let trace = video_trace(&vcfg, &mut rng);
    let mapped = trace_to_instance(&trace);
    let thetas = [1.0, 0.9, 0.75, 0.5];
    for (name, outcome) in [
        (
            "randPr",
            engine_run(&mapped.instance, &mut RandPr::from_seed(seeds.next_seed())).unwrap(),
        ),
        (
            "tail-drop",
            engine_run(&mapped.instance, &mut TailDrop::new()).unwrap(),
        ),
    ] {
        let mut row = vec![name.to_string()];
        for &theta in &thetas {
            row.push(format!(
                "{:.1}",
                partial_benefit(&mapped.instance, &outcome, theta)
            ));
        }
        theta_table.row(row);
    }
    report.table(theta_table);

    // --- 5: arrival-order sensitivity. ---
    // randPr's completed family is a deterministic function of the drawn
    // priorities and is provably invariant under arrival reordering;
    // history-dependent baselines are not. Measure benefit dispersion
    // across shuffles of ONE instance.
    let shuffles: usize = scale.pick(10, 30);
    let mut order_table = NamedTable::new(
        "Arrival-order sensitivity: benefit across shuffles of one instance",
        &["algorithm", "mean", "min", "max", "spread (max−min)"],
    );
    let mut rng = StdRng::seed_from_u64(seeds.next_seed());
    let base =
        random_instance(&RandomInstanceConfig::unweighted(40, 90, 4), &mut rng).expect("feasible");
    let fixed_seed = seeds.next_seed();
    type OrderFactory = fn(u64) -> Box<dyn OnlineAlgorithm>;
    let order_algs: &[(&str, OrderFactory)] = &[
        ("randPr (fixed draw)", |s| Box::new(RandPr::from_seed(s))),
        ("hashPr 8-wise (fixed seed)", |s| {
            Box::new(HashRandPr::new(8, s))
        }),
        ("greedy[fewest-remaining]", |_| {
            Box::new(osp_core::algorithms::GreedyOnline::new(
                osp_core::algorithms::TieBreak::ByFewestRemaining,
            ))
        }),
        ("greedy[first-fit]", |_| {
            Box::new(osp_core::algorithms::GreedyOnline::new(
                osp_core::algorithms::TieBreak::ByIndex,
            ))
        }),
    ];
    for &(name, factory) in order_algs {
        // Shuffle seeds are drawn per algorithm, as before; the fixed
        // algorithm seed is shared so randomized policies replay one draw.
        let shuffled: Vec<_> = (0..shuffles)
            .map(|_| {
                let mut rng = StdRng::seed_from_u64(seeds.next_seed());
                base.shuffle_arrivals(&mut rng)
            })
            .collect();
        let mut s = Summary::new();
        for out in pool().map(&shuffled, |_, inst| {
            let mut alg = factory(fixed_seed);
            engine_run(inst, alg.as_mut()).unwrap()
        }) {
            s.add(out.benefit());
        }
        order_table.row(vec![
            name.to_string(),
            format!("{:.2}", s.mean()),
            format!("{:.0}", s.min()),
            format!("{:.0}", s.max()),
            format!("{:.0}", s.max() - s.min()),
        ]);
    }
    report.table(order_table);

    report.note(
        "Reading guide: (1) on dense random workloads, *activity awareness* is worth a \
         lot (randPr+active +~70%), and even the fresh-coin variant beats plain randPr \
         there — when rival sets die quickly, knowing who is still alive substitutes for \
         consistent priorities on average-case inputs. The collapse table shows the other \
         side: against fresh rivals at every element (the video/burst structure that \
         motivates the paper), re-randomizing collapses as σ^(−k) — 20× below randPr at \
         k=4 — empirically matching both theory columns; and only consistent priorities \
         admit the worst-case guarantee (the Lemma 9 distribution bounds every algorithm, \
         but greedy/fresh-coin policies have no Theorem-1-style upper bound at all). \
         (2) Even 2-wise hashing is statistically indistinguishable from true randomness \
         here, so the k·σ-wise independence requirement is an analysis artifact. \
         (3) Partial credit narrows the policy gap, because tail-drop's near-miss frames \
         start to count (open problem 3). (4) randPr and hashPr have zero spread across \
         arrival reorderings (their completion condition has no notion of time), while \
         history-dependent baselines fluctuate — robustness to adversarial *ordering* \
         comes free with consistent priorities.",
    );
    report
}
