//! Property-based tests for the statistics utilities.

use proptest::prelude::*;

use osp_stats::{median, quantile, AliasTable, Quantiles, SeedSequence, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn summary_merge_equals_sequential(
        a in proptest::collection::vec(-1e6f64..1e6, 0..50),
        b in proptest::collection::vec(-1e6f64..1e6, 0..50),
    ) {
        let seq: Summary = a.iter().chain(b.iter()).copied().collect();
        let mut left: Summary = a.iter().copied().collect();
        let right: Summary = b.iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), seq.count());
        if seq.count() > 0 {
            prop_assert!((left.mean() - seq.mean()).abs() < 1e-6);
            prop_assert!((left.sample_variance() - seq.sample_variance()).abs() < 1.0);
            prop_assert_eq!(left.min(), seq.min());
            prop_assert_eq!(left.max(), seq.max());
        }
    }

    #[test]
    fn mean_is_within_min_max(data in proptest::collection::vec(-1e9f64..1e9, 1..100)) {
        let s: Summary = data.iter().copied().collect();
        prop_assert!(s.min() <= s.mean() + 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.sample_variance() >= 0.0);
    }

    #[test]
    fn ci_contains_mean_and_tightens_with_level(
        data in proptest::collection::vec(-1e3f64..1e3, 2..100),
    ) {
        let s: Summary = data.iter().copied().collect();
        let narrow = s.confidence_interval(0.90);
        let wide = s.confidence_interval(0.99);
        prop_assert!(narrow.contains(s.mean()));
        prop_assert!(wide.contains(s.mean()));
        prop_assert!(narrow.width() <= wide.width() + 1e-12);
    }

    #[test]
    fn quantiles_are_bounded_and_monotone(
        data in proptest::collection::vec(-1e6f64..1e6, 1..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let vlo = quantile(&data, lo).unwrap();
        let vhi = quantile(&data, hi).unwrap();
        prop_assert!(vlo <= vhi + 1e-9);
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(min - 1e-9 <= vlo && vhi <= max + 1e-9);
        // median consistent with the batch struct.
        let batch = Quantiles::from_sample(&data).unwrap();
        prop_assert_eq!(median(&data).unwrap(), batch.p50);
    }

    #[test]
    fn alias_sampled_frequencies_match_weights(
        weights in proptest::collection::vec(0.0f64..100.0, 1..12),
        seed in 0u64..1000,
    ) {
        let total: f64 = weights.iter().sum();
        let table = AliasTable::new(&weights);
        if total <= 0.0 {
            prop_assert!(table.is_err());
            return Ok(());
        }
        let table = table.unwrap();
        prop_assert_eq!(table.len(), weights.len());
        // Exact check: the table's analytic mass equals the normalized
        // weight for every bucket (up to float rounding)…
        for (i, &w) in weights.iter().enumerate() {
            prop_assert!(
                (table.mass(i) - w / total).abs() < 1e-9,
                "bucket {} mass {} vs {}", i, table.mass(i), w / total
            );
        }
        // …and an empirical spot check keeps the sampler honest.
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 20_000;
        let mut hits = vec![0u32; weights.len()];
        for _ in 0..n {
            hits[table.sample(&mut rng)] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            let want = weights[i] / total;
            let got = f64::from(h) / f64::from(n);
            prop_assert!(
                (got - want).abs() < 0.03,
                "bucket {} freq {} vs {}", i, got, want
            );
        }
    }

    #[test]
    fn alias_degenerate_cases_do_not_panic(
        n in 1usize..30,
        hot in 0usize..30,
        skew in proptest::sample::select(vec![1.0f64, 1e-12, 1e12, 1e300]),
    ) {
        // Single bucket, zero-weight entries and huge skew all construct
        // and sample without panicking, and zero-weight buckets never win.
        let hot = hot % n;
        let mut weights = vec![0.0f64; n];
        weights[hot] = skew;
        let table = AliasTable::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            prop_assert_eq!(table.sample(&mut rng), hot);
        }
    }

    #[test]
    fn alias_same_seed_same_draw_sequence(
        weights in proptest::collection::vec(0.1f64..10.0, 1..10),
        seed in 0u64..u64::MAX,
    ) {
        // The sampler's API promise: a fixed table and a fixed RNG seed
        // reproduce the draw sequence exactly.
        let table = AliasTable::new(&weights).unwrap();
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        let da: Vec<usize> = (0..100).map(|_| table.sample(&mut a)).collect();
        let db: Vec<usize> = (0..100).map(|_| table.sample(&mut b)).collect();
        prop_assert_eq!(da, db);
    }

    #[test]
    fn seed_sequences_are_reproducible_and_label_sensitive(root in 0u64..u64::MAX, n in 1usize..50) {
        let s1: Vec<u64> = SeedSequence::new(root).take(n).collect();
        let s2: Vec<u64> = SeedSequence::new(root).take(n).collect();
        prop_assert_eq!(&s1, &s2);
        let c1: Vec<u64> = SeedSequence::new(root).child("a").take(n).collect();
        let c2: Vec<u64> = SeedSequence::new(root).child("b").take(n).collect();
        prop_assert_ne!(c1, c2);
    }
}
