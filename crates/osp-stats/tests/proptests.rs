//! Property-based tests for the statistics utilities.

use proptest::prelude::*;

use osp_stats::{median, quantile, Quantiles, SeedSequence, Summary};

proptest! {
    #[test]
    fn summary_merge_equals_sequential(
        a in proptest::collection::vec(-1e6f64..1e6, 0..50),
        b in proptest::collection::vec(-1e6f64..1e6, 0..50),
    ) {
        let seq: Summary = a.iter().chain(b.iter()).copied().collect();
        let mut left: Summary = a.iter().copied().collect();
        let right: Summary = b.iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), seq.count());
        if seq.count() > 0 {
            prop_assert!((left.mean() - seq.mean()).abs() < 1e-6);
            prop_assert!((left.sample_variance() - seq.sample_variance()).abs() < 1.0);
            prop_assert_eq!(left.min(), seq.min());
            prop_assert_eq!(left.max(), seq.max());
        }
    }

    #[test]
    fn mean_is_within_min_max(data in proptest::collection::vec(-1e9f64..1e9, 1..100)) {
        let s: Summary = data.iter().copied().collect();
        prop_assert!(s.min() <= s.mean() + 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.sample_variance() >= 0.0);
    }

    #[test]
    fn ci_contains_mean_and_tightens_with_level(
        data in proptest::collection::vec(-1e3f64..1e3, 2..100),
    ) {
        let s: Summary = data.iter().copied().collect();
        let narrow = s.confidence_interval(0.90);
        let wide = s.confidence_interval(0.99);
        prop_assert!(narrow.contains(s.mean()));
        prop_assert!(wide.contains(s.mean()));
        prop_assert!(narrow.width() <= wide.width() + 1e-12);
    }

    #[test]
    fn quantiles_are_bounded_and_monotone(
        data in proptest::collection::vec(-1e6f64..1e6, 1..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let vlo = quantile(&data, lo).unwrap();
        let vhi = quantile(&data, hi).unwrap();
        prop_assert!(vlo <= vhi + 1e-9);
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(min - 1e-9 <= vlo && vhi <= max + 1e-9);
        // median consistent with the batch struct.
        let batch = Quantiles::from_sample(&data).unwrap();
        prop_assert_eq!(median(&data).unwrap(), batch.p50);
    }

    #[test]
    fn seed_sequences_are_reproducible_and_label_sensitive(root in 0u64..u64::MAX, n in 1usize..50) {
        let s1: Vec<u64> = SeedSequence::new(root).take(n).collect();
        let s2: Vec<u64> = SeedSequence::new(root).take(n).collect();
        prop_assert_eq!(&s1, &s2);
        let c1: Vec<u64> = SeedSequence::new(root).child("a").take(n).collect();
        let c2: Vec<u64> = SeedSequence::new(root).child("b").take(n).collect();
        prop_assert_ne!(c1, c2);
    }
}
