//! # osp-stats — statistics utilities for the OSP experiment harness
//!
//! Small, dependency-free helpers used throughout the workspace to summarize
//! randomized-trial output: streaming moments ([`Summary`]), normal-theory
//! confidence intervals ([`ConfidenceInterval`]), empirical quantiles
//! ([`quantile`]), fixed-width text tables ([`Table`]), deterministic seed
//! fan-out for reproducible experiments ([`SeedSequence`]) and O(1)
//! weighted discrete sampling ([`AliasTable`]).
//!
//! ```
//! use osp_stats::Summary;
//!
//! let s: Summary = (1..=100).map(|x| x as f64).collect();
//! assert_eq!(s.count(), 100);
//! assert!((s.mean() - 50.5).abs() < 1e-12);
//! let ci = s.confidence_interval(0.95);
//! assert!(ci.contains(50.5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alias;
mod quantile;
mod rng;
mod summary;
mod table;

pub use alias::{AliasError, AliasTable};
pub use quantile::{median, quantile, Quantiles};
pub use rng::SeedSequence;
pub use summary::{ConfidenceInterval, Summary};
pub use table::Table;
