//! Minimal fixed-width / markdown table rendering for experiment reports.

use std::fmt;

/// A simple column-aligned table used by the experiment harness to print
/// human-readable and markdown-compatible result tables.
///
/// # Examples
///
/// ```
/// use osp_stats::Table;
///
/// let mut t = Table::new(&["alg", "ratio"]);
/// t.row(&["randPr", "2.31"]);
/// t.row(&["greedy", "8.00"]);
/// let text = t.to_string();
/// assert!(text.contains("randPr"));
/// assert!(text.starts_with("| alg"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of cells.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of headers.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows
            .push(cells.iter().map(|s| s.as_ref().to_string()).collect());
        self
    }

    /// Appends a row of already-owned cells (convenient with `format!`).
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of headers.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    /// Renders as a GitHub-flavored-markdown table with aligned columns.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {:<width$} |", cell, width = w[i])?;
            }
            writeln!(f)
        };
        render(f, &self.headers)?;
        write!(f, "|")?;
        for wi in &w {
            write!(f, "{:-<width$}|", "", width = wi + 2)?;
        }
        writeln!(f)?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(&["1", "2"]).row(&["333", "4"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with("|---"));
        // All rows share the same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(&["x"]);
        assert!(t.is_empty());
        t.row(&["1"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row has")]
    fn mismatched_row_panics() {
        Table::new(&["a", "b"]).row(&["only one"]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panics() {
        Table::new(&[]);
    }

    #[test]
    fn row_owned_works() {
        let mut t = Table::new(&["n", "v"]);
        t.row_owned(vec![format!("{}", 1), format!("{:.2}", 2.5)]);
        assert!(t.to_string().contains("2.50"));
    }
}
