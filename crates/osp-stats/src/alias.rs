//! Walker/Vose alias tables: O(1) weighted discrete sampling.
//!
//! The experiment harness draws from fixed weight vectors millions of
//! times (element popularity in the skewed generators, weighted trial
//! mixes). A cumulative-sum scan costs O(n) — or O(log n) with binary
//! search — *per draw*; an [`AliasTable`] preprocesses the weights once in
//! O(n) and then answers every draw with one table row: one uniform index,
//! one uniform coin.

use rand::Rng;

/// Error constructing an [`AliasTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AliasError {
    /// The weight slice was empty.
    Empty,
    /// A weight was negative, NaN or infinite.
    BadWeight,
    /// All weights were zero.
    ZeroTotal,
}

impl std::fmt::Display for AliasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AliasError::Empty => write!(f, "alias table needs at least one weight"),
            AliasError::BadWeight => write!(f, "weights must be finite and non-negative"),
            AliasError::ZeroTotal => write!(f, "weights must not all be zero"),
        }
    }
}

impl std::error::Error for AliasError {}

/// A preprocessed weighted distribution over `0..len` supporting O(1)
/// draws (Vose's stable construction of Walker's alias method).
///
/// Zero-weight entries are representable and are never drawn.
///
/// # Examples
///
/// ```
/// use osp_stats::AliasTable;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let t = AliasTable::new(&[1.0, 3.0]).unwrap();
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut hits = [0u32; 2];
/// for _ in 0..10_000 {
///     hits[t.sample(&mut rng)] += 1;
/// }
/// // Index 1 carries 3/4 of the mass.
/// assert!(hits[1] > hits[0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    /// Probability of keeping bucket `i` (vs. deferring to `alias[i]`).
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table in O(n).
    ///
    /// # Errors
    ///
    /// Rejects empty input, non-finite or negative weights, and an
    /// all-zero weight vector.
    pub fn new(weights: &[f64]) -> Result<Self, AliasError> {
        if weights.is_empty() {
            return Err(AliasError::Empty);
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(AliasError::BadWeight);
        }
        let max = weights.iter().copied().fold(0.0f64, f64::max);
        if max <= 0.0 {
            return Err(AliasError::ZeroTotal);
        }
        // Normalize by the largest weight before summing, so vectors of
        // huge-but-finite weights (e.g. several 1e300 entries) cannot
        // overflow the total to infinity.
        let inv_max = 1.0 / max;
        let normalized: Vec<f64> = weights.iter().map(|w| w * inv_max).collect();
        let total: f64 = normalized.iter().sum(); // in [1, n]: finite
        let n = weights.len();
        // Scale so the average bucket holds exactly 1.
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = normalized.iter().map(|w| w * scale).collect();
        let mut alias: Vec<u32> = (0..n as u32).collect();
        // Partition buckets by whether they are under- or over-full.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        // Pair each under-full bucket with an over-full donor.
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            // Donor gives away (1 - prob[s]) of its mass.
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are exactly full modulo rounding.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        Ok(AliasTable { prob, alias })
    }

    /// Number of buckets (the support is `0..len()`).
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Always `false`: construction rejects empty weight vectors.
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index in O(1): a uniform bucket, then a biased coin
    /// between the bucket and its alias.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// The exact probability mass the table assigns to `index` (for tests
    /// and diagnostics; O(n)).
    pub fn mass(&self, index: usize) -> f64 {
        let n = self.prob.len() as f64;
        let mut p = self.prob[index];
        for (i, &a) in self.alias.iter().enumerate() {
            if a as usize == index && i != index {
                p += 1.0 - self.prob[i];
            }
        }
        p / n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(AliasTable::new(&[]), Err(AliasError::Empty));
        assert_eq!(AliasTable::new(&[1.0, -1.0]), Err(AliasError::BadWeight));
        assert_eq!(
            AliasTable::new(&[f64::NAN, 1.0]),
            Err(AliasError::BadWeight)
        );
        assert_eq!(
            AliasTable::new(&[f64::INFINITY]),
            Err(AliasError::BadWeight)
        );
        assert_eq!(AliasTable::new(&[0.0, 0.0]), Err(AliasError::ZeroTotal));
    }

    #[test]
    fn single_bucket_always_wins() {
        let t = AliasTable::new(&[0.25]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
        assert!((t.mass(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_entries_never_drawn() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 2.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = t.sample(&mut rng);
            assert!(i == 1 || i == 3);
        }
        assert!(t.mass(0) < 1e-12);
        assert!(t.mass(2) < 1e-12);
    }

    #[test]
    fn masses_match_normalized_weights() {
        let w = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&w).unwrap();
        let total: f64 = w.iter().sum();
        for (i, &wi) in w.iter().enumerate() {
            assert!(
                (t.mass(i) - wi / total).abs() < 1e-12,
                "bucket {i}: {} vs {}",
                t.mass(i),
                wi / total
            );
        }
    }

    #[test]
    fn empirical_frequencies_track_weights() {
        let w = [5.0, 1.0, 0.5, 3.5];
        let t = AliasTable::new(&w).unwrap();
        let total: f64 = w.iter().sum();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let mut hits = [0u32; 4];
        for _ in 0..n {
            hits[t.sample(&mut rng)] += 1;
        }
        for (i, &h) in hits.iter().enumerate() {
            let want = w[i] / total;
            let got = f64::from(h) / n as f64;
            assert!((got - want).abs() < 0.01, "bucket {i}: {got} vs {want}");
        }
    }

    #[test]
    fn extreme_skew_does_not_panic_and_keeps_mass() {
        let w = [1e-300, 1e300, 1e-300];
        let t = AliasTable::new(&w).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert_eq!(t.sample(&mut rng), 1);
        }
    }

    #[test]
    fn huge_weights_do_not_overflow_the_total() {
        // Summing these directly would overflow to infinity; the table
        // must still build and split the mass evenly.
        let t = AliasTable::new(&[1e300, 1e300]).unwrap();
        assert!((t.mass(0) - 0.5).abs() < 1e-12);
        assert!((t.mass(1) - 0.5).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(6);
        let ones: usize = (0..10_000).map(|_| t.sample(&mut rng)).sum();
        assert!((3_000..=7_000).contains(&ones), "ones={ones}");
    }

    #[test]
    fn deterministic_under_seed() {
        let t = AliasTable::new(&[2.0, 1.0, 7.0]).unwrap();
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| t.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..50).map(|_| t.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
