//! Streaming summary statistics (Welford's algorithm) and normal-theory
//! confidence intervals.

use std::fmt;

/// Streaming first- and second-moment accumulator using Welford's online
/// algorithm, which is numerically stable even for long streams of values
/// with a large common offset.
///
/// # Examples
///
/// ```
/// use osp_stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.add(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN; summaries of NaN observations are meaningless.
    pub fn add(&mut self, x: f64) {
        assert!(!x.is_nan(), "Summary::add received NaN");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (parallel-friendly combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Population variance (divide by `n`); 0.0 for fewer than one value.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divide by `n - 1`); 0.0 for fewer than two values.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.stddev() / (self.count as f64).sqrt()
        }
    }

    /// Two-sided normal-theory confidence interval for the mean at the given
    /// `level` (e.g. `0.95` or `0.99`).
    ///
    /// Uses the normal approximation, which is appropriate for the large
    /// trial counts used by the experiment harness (hundreds to hundreds of
    /// thousands of trials).
    ///
    /// # Panics
    ///
    /// Panics if `level` is not strictly between 0 and 1.
    pub fn confidence_interval(&self, level: f64) -> ConfidenceInterval {
        assert!(
            level > 0.0 && level < 1.0,
            "confidence level must be in (0, 1), got {level}"
        );
        let z = normal_quantile(0.5 + level / 2.0);
        let half = z * self.standard_error();
        ConfidenceInterval {
            lo: self.mean() - half,
            hi: self.mean() + half,
            level,
        }
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.6} sd={:.6} min={:.6} max={:.6}",
            self.count,
            self.mean(),
            self.stddev(),
            self.min,
            self.max
        )
    }
}

/// A two-sided confidence interval `[lo, hi]` at a given confidence level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower endpoint.
    pub lo: f64,
    /// Upper endpoint.
    pub hi: f64,
    /// Confidence level in (0, 1), e.g. 0.95.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Whether `x` lies inside the interval (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Interval width `hi - lo`.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Interval midpoint.
    pub fn midpoint(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.6}, {:.6}]@{:.0}%",
            self.lo,
            self.hi,
            self.level * 100.0
        )
    }
}

/// Quantile function (inverse CDF) of the standard normal distribution.
///
/// Acklam's rational approximation; absolute error below 1.2e-9 over the
/// whole open interval, far below anything that matters for experiment CIs.
///
/// # Panics
///
/// Panics if `p` is not strictly between 0 and 1.
pub(crate) fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal quantile requires p in (0,1)");

    // Coefficients for the central and tail rational approximations.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sum(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.standard_error(), 0.0);
    }

    #[test]
    fn single_value() {
        let mut s = Summary::new();
        s.add(42.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn welford_matches_two_pass() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 100.0 + 1e6).collect();
        let s: Summary = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-6);
        assert!((s.sample_variance() - var).abs() / var < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64 * 0.37).cos()).collect();
        let seq: Summary = data.iter().copied().collect();
        let (a, b) = data.split_at(123);
        let mut left: Summary = a.iter().copied().collect();
        let right: Summary = b.iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), seq.count());
        assert!((left.mean() - seq.mean()).abs() < 1e-12);
        assert!((left.sample_variance() - seq.sample_variance()).abs() < 1e-9);
        assert_eq!(left.min(), seq.min());
        assert_eq!(left.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Summary::new().add(f64::NAN);
    }

    #[test]
    fn normal_quantile_known_values() {
        // Standard z-scores.
        assert!((normal_quantile(0.975) - 1.959_964).abs() < 1e-4);
        assert!((normal_quantile(0.995) - 2.575_829).abs() < 1e-4);
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.025) + 1.959_964).abs() < 1e-4);
        // Tail regions.
        assert!((normal_quantile(1e-6) + 4.753_424).abs() < 1e-3);
    }

    #[test]
    fn confidence_interval_shrinks_with_n() {
        let small: Summary = (0..100).map(|i| (i % 7) as f64).collect();
        let large: Summary = (0..10_000).map(|i| (i % 7) as f64).collect();
        assert!(large.confidence_interval(0.95).width() < small.confidence_interval(0.95).width());
    }

    #[test]
    fn ci_contains_true_mean_for_uniform_stream() {
        // Deterministic "uniform" stream: i/n has mean ~0.5.
        let s: Summary = (0..10_000).map(|i| i as f64 / 10_000.0).collect();
        let ci = s.confidence_interval(0.99);
        assert!(ci.contains(0.49995));
    }

    #[test]
    #[should_panic(expected = "confidence level")]
    fn bad_level_rejected() {
        let s: Summary = [1.0, 2.0].into_iter().collect();
        let _ = s.confidence_interval(1.0);
    }

    #[test]
    fn display_formats() {
        let s: Summary = [1.0, 2.0, 3.0].into_iter().collect();
        let text = s.to_string();
        assert!(text.contains("n=3"));
        let ci = s.confidence_interval(0.95);
        assert!(ci.to_string().contains("@95%"));
    }
}
