//! Deterministic seed fan-out for reproducible multi-trial experiments.

/// Derives an unbounded stream of independent-looking 64-bit seeds from a
/// single root seed, so that every trial, generator and algorithm in an
/// experiment gets its own stable seed.
///
/// Internally this is SplitMix64, the standard seeding generator; it is
/// *not* meant for direct use as a simulation RNG (the simulation RNG is
/// `rand::StdRng` seeded from these values), only for decorrelating seeds.
///
/// # Examples
///
/// ```
/// use osp_stats::SeedSequence;
///
/// let mut seq = SeedSequence::new(42);
/// let a = seq.next_seed();
/// let b = seq.next_seed();
/// assert_ne!(a, b);
/// // Same root seed -> same stream.
/// let mut seq2 = SeedSequence::new(42);
/// assert_eq!(seq2.next_seed(), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSequence {
    state: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        SeedSequence { state: seed }
    }

    /// Returns the next seed in the stream.
    pub fn next_seed(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derives a child sequence for a named subsystem, so adding trials to
    /// one subsystem does not shift the seeds of another.
    pub fn child(&self, label: &str) -> SeedSequence {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SeedSequence {
            state: self.state ^ h,
        }
    }
}

impl Iterator for SeedSequence {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        Some(self.next_seed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        let s1: Vec<u64> = SeedSequence::new(7).take(10).collect();
        let s2: Vec<u64> = SeedSequence::new(7).take(10).collect();
        assert_eq!(s1, s2);
    }

    #[test]
    fn different_roots_differ() {
        let s1: Vec<u64> = SeedSequence::new(7).take(10).collect();
        let s2: Vec<u64> = SeedSequence::new(8).take(10).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn no_short_cycles() {
        let seeds: HashSet<u64> = SeedSequence::new(0).take(10_000).collect();
        assert_eq!(seeds.len(), 10_000);
    }

    #[test]
    fn children_are_independent_streams() {
        let root = SeedSequence::new(99);
        let mut a = root.child("alg");
        let mut b = root.child("gen");
        assert_ne!(a.next_seed(), b.next_seed());
        // Child derivation is stable.
        let mut a2 = root.child("alg");
        let mut a3 = root.child("alg");
        assert_eq!(a2.next_seed(), a3.next_seed());
    }
}
