//! Empirical quantiles over finite samples.

/// Returns the `q`-quantile of `data` using linear interpolation between
/// order statistics (type-7 estimator, the R/NumPy default).
///
/// The input does not need to be sorted; a sorted copy is made internally.
/// Returns `None` on an empty slice.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` or if any value is NaN.
///
/// # Examples
///
/// ```
/// use osp_stats::quantile;
///
/// let data = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(quantile(&data, 0.0), Some(1.0));
/// assert_eq!(quantile(&data, 1.0), Some(4.0));
/// assert_eq!(quantile(&data, 0.5), Some(2.5));
/// ```
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    if data.is_empty() {
        return None;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    Some(quantile_sorted(&sorted, q))
}

/// Median shorthand for [`quantile`] at `q = 0.5`.
pub fn median(data: &[f64]) -> Option<f64> {
    quantile(data, 0.5)
}

fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = q * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = h - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A batch of common quantiles computed in one sort of the input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantiles {
    /// Minimum (0th percentile).
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum (100th percentile).
    pub max: f64,
}

impl Quantiles {
    /// Computes the batch from a sample. Returns `None` on an empty slice.
    ///
    /// # Panics
    ///
    /// Panics if any value is NaN.
    pub fn from_sample(data: &[f64]) -> Option<Self> {
        if data.is_empty() {
            return None;
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
        Some(Quantiles {
            min: sorted[0],
            p25: quantile_sorted(&sorted, 0.25),
            p50: quantile_sorted(&sorted, 0.50),
            p75: quantile_sorted(&sorted, 0.75),
            p95: quantile_sorted(&sorted, 0.95),
            p99: quantile_sorted(&sorted, 0.99),
            max: sorted[sorted.len() - 1],
        })
    }

    /// Interquartile range `p75 - p25`.
    pub fn iqr(&self) -> f64 {
        self.p75 - self.p25
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_returns_none() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(median(&[]), None);
        assert!(Quantiles::from_sample(&[]).is_none());
    }

    #[test]
    fn singleton() {
        assert_eq!(quantile(&[3.5], 0.0), Some(3.5));
        assert_eq!(quantile(&[3.5], 0.5), Some(3.5));
        assert_eq!(quantile(&[3.5], 1.0), Some(3.5));
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
    }

    #[test]
    fn interpolation() {
        let data = [10.0, 20.0, 30.0, 40.0, 50.0];
        // h = 0.1 * 4 = 0.4 -> 10 + 0.4*(20-10) = 14
        assert_eq!(quantile(&data, 0.1), Some(14.0));
        assert_eq!(quantile(&data, 0.75), Some(40.0));
    }

    #[test]
    fn unsorted_input_ok() {
        let data = [50.0, 10.0, 40.0, 20.0, 30.0];
        assert_eq!(median(&data), Some(30.0));
    }

    #[test]
    fn batch_is_monotone() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 7919) % 1000) as f64).collect();
        let q = Quantiles::from_sample(&data).unwrap();
        assert!(q.min <= q.p25);
        assert!(q.p25 <= q.p50);
        assert!(q.p50 <= q.p75);
        assert!(q.p75 <= q.p95);
        assert!(q.p95 <= q.p99);
        assert!(q.p99 <= q.max);
        assert!(q.iqr() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile level")]
    fn bad_level() {
        let _ = quantile(&[1.0], 1.5);
    }
}
