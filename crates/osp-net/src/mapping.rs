//! The paper's reduction, executable: "elements represent time steps (not
//! packets!), and sets represent data frames. Time step `j` is included in
//! data frame `i` if a packet of frame `i` arrives at time `j`."
//!
//! Empty slots carry no decision and are skipped, so the OSP instance's
//! elements are exactly the non-empty slots, with capacity equal to the
//! link rate.

use osp_core::{Instance, InstanceBuilder, SetId};

use crate::trace::Trace;

/// The instance produced by [`trace_to_instance`], plus the bookkeeping
/// needed to translate results back to the network domain.
#[derive(Debug, Clone, PartialEq)]
pub struct MappedTrace {
    /// The OSP instance (set `i` = frame `i`; element order = slot order).
    pub instance: Instance,
    /// For each OSP element (in arrival order), the original slot index.
    pub element_slots: Vec<usize>,
}

/// Reduces a packet [`Trace`] to an OSP [`Instance`].
///
/// Frame `i` becomes set `i` with the frame's weight and packet count;
/// every non-empty slot becomes one element with capacity
/// [`Trace::capacity`] whose members are the frames present in the slot.
///
/// # Examples
///
/// ```
/// use osp_net::frame::{Frame, FrameClass};
/// use osp_net::trace::Trace;
/// use osp_net::mapping::trace_to_instance;
///
/// let f = Frame { class: FrameClass::P, packets: 2, weight: 1.0 };
/// let trace = Trace::new(vec![f], vec![vec![0], vec![], vec![0]], 1).unwrap();
/// let mapped = trace_to_instance(&trace);
/// assert_eq!(mapped.instance.num_sets(), 1);
/// assert_eq!(mapped.instance.num_elements(), 2); // empty slot skipped
/// assert_eq!(mapped.element_slots, vec![0, 2]);
/// ```
pub fn trace_to_instance(trace: &Trace) -> MappedTrace {
    let mut b = InstanceBuilder::new();
    for f in trace.frames() {
        b.add_set(f.weight, f.packets);
    }
    let mut element_slots = Vec::new();
    for (slot_idx, slot) in trace.slots().iter().enumerate() {
        if slot.is_empty() {
            continue;
        }
        let members: Vec<SetId> = slot.iter().map(|&f| SetId(f as u32)).collect();
        b.add_element(trace.capacity(), &members);
        element_slots.push(slot_idx);
    }
    MappedTrace {
        instance: b
            .build()
            .expect("trace invariants imply instance invariants"),
        element_slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Frame, FrameClass};
    use crate::trace::{video_trace, VideoTraceConfig};
    use osp_core::stats::InstanceStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frame(packets: u32, weight: f64) -> Frame {
        Frame {
            class: FrameClass::P,
            packets,
            weight,
        }
    }

    #[test]
    fn weights_and_sizes_carry_over() {
        let trace = Trace::new(
            vec![frame(2, 3.5), frame(1, 1.0)],
            vec![vec![0, 1], vec![0]],
            2,
        )
        .unwrap();
        let mapped = trace_to_instance(&trace);
        let inst = &mapped.instance;
        assert_eq!(inst.set(SetId(0)).weight(), 3.5);
        assert_eq!(inst.set(SetId(0)).size(), 2);
        assert_eq!(inst.set(SetId(1)).size(), 1);
        assert!(!inst.is_unit_capacity());
    }

    #[test]
    fn burst_size_equals_element_load() {
        let mut rng = StdRng::seed_from_u64(0);
        let trace = video_trace(&VideoTraceConfig::small(), &mut rng);
        let mapped = trace_to_instance(&trace);
        let st = InstanceStats::compute(&mapped.instance);
        assert_eq!(st.sigma_max as usize, trace.max_burst());
        // Incidence count is preserved: packets = Σ loads.
        let total_load: u32 = mapped.instance.arrivals().iter().map(|a| a.load()).sum();
        assert_eq!(total_load as usize, trace.total_packets());
    }

    #[test]
    fn element_slots_monotone() {
        let mut rng = StdRng::seed_from_u64(1);
        let trace = video_trace(&VideoTraceConfig::small(), &mut rng);
        let mapped = trace_to_instance(&trace);
        assert!(mapped.element_slots.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(mapped.element_slots.len(), mapped.instance.num_elements());
    }
}
