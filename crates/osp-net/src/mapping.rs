//! The paper's reduction, executable: "elements represent time steps (not
//! packets!), and sets represent data frames. Time step `j` is included in
//! data frame `i` if a packet of frame `i` arrives at time `j`."
//!
//! Empty slots carry no decision and are skipped, so the OSP instance's
//! elements are exactly the non-empty slots, with capacity equal to the
//! link rate.
//!
//! Two executions of the reduction:
//!
//! * [`trace_to_instance`] materializes a full [`Instance`] (plus the
//!   element↔slot bookkeeping) — what the offline solvers and statistics
//!   need;
//! * [`TraceSource`] streams the same reduction as an
//!   [`ArrivalSource`], so a trace replays through the engine without
//!   the intermediate instance ever existing — and, being the boundary
//!   where *untrusted* input enters the engine, it validates every slot
//!   with the checked [`Arrival::try_new`] instead of trusting builder
//!   invariants.

use osp_core::source::ArrivalSource;
use osp_core::{Arrival, ElementId, Error, Instance, InstanceBuilder, SetId, SetMeta};

use crate::trace::Trace;

/// The instance produced by [`trace_to_instance`], plus the bookkeeping
/// needed to translate results back to the network domain.
#[derive(Debug, Clone, PartialEq)]
pub struct MappedTrace {
    /// The OSP instance (set `i` = frame `i`; element order = slot order).
    pub instance: Instance,
    /// For each OSP element (in arrival order), the original slot index.
    pub element_slots: Vec<usize>,
}

/// Reduces a packet [`Trace`] to an OSP [`Instance`].
///
/// Frame `i` becomes set `i` with the frame's weight and packet count;
/// every non-empty slot becomes one element with capacity
/// [`Trace::capacity`] whose members are the frames present in the slot.
///
/// # Examples
///
/// ```
/// use osp_net::frame::{Frame, FrameClass};
/// use osp_net::trace::Trace;
/// use osp_net::mapping::trace_to_instance;
///
/// let f = Frame { class: FrameClass::P, packets: 2, weight: 1.0 };
/// let trace = Trace::new(vec![f], vec![vec![0], vec![], vec![0]], 1).unwrap();
/// let mapped = trace_to_instance(&trace);
/// assert_eq!(mapped.instance.num_sets(), 1);
/// assert_eq!(mapped.instance.num_elements(), 2); // empty slot skipped
/// assert_eq!(mapped.element_slots, vec![0, 2]);
/// ```
pub fn trace_to_instance(trace: &Trace) -> MappedTrace {
    let mut b = InstanceBuilder::new();
    for f in trace.frames() {
        b.add_set(f.weight, f.packets);
    }
    let mut element_slots = Vec::new();
    for (slot_idx, slot) in trace.slots().iter().enumerate() {
        if slot.is_empty() {
            continue;
        }
        let members: Vec<SetId> = slot.iter().map(|&f| SetId(f as u32)).collect();
        b.add_element(trace.capacity(), &members);
        element_slots.push(slot_idx);
    }
    MappedTrace {
        instance: b
            .build()
            .expect("trace invariants imply instance invariants"),
        element_slots,
    }
}

/// The paper's reduction as a stream: each non-empty slot of a packet
/// [`Trace`] becomes one arrival, pulled on demand — no intermediate
/// [`Instance`] is built. Conformant with [`trace_to_instance`]: replaying
/// this source produces bit-identical outcomes to replaying the mapped
/// instance (pinned by `tests/source_conformance.rs`).
///
/// This is the boundary where untrusted input (a parsed capture, a
/// third-party trace) enters the engine, so construction re-validates
/// every slot through the checked [`Arrival::try_new`] — a malformed
/// member list surfaces as an [`Error`] here instead of a panic (or a
/// silently wrong binary search) deep inside a replay.
///
/// # Examples
///
/// ```
/// use osp_net::frame::{Frame, FrameClass};
/// use osp_net::trace::Trace;
/// use osp_net::mapping::TraceSource;
/// use osp_core::prelude::*;
///
/// let f = Frame { class: FrameClass::P, packets: 2, weight: 1.0 };
/// let trace = Trace::new(vec![f], vec![vec![0], vec![], vec![0]], 1).unwrap();
/// let mut source = TraceSource::new(&trace)?;
/// let outcome = run_source(&mut source, &mut GreedyOnline::new(TieBreak::ByWeight))?;
/// assert_eq!(outcome.benefit(), 1.0);
/// # Ok::<(), osp_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct TraceSource<'a> {
    trace: &'a Trace,
    sets: Vec<SetMeta>,
    /// Sorted member buffer of the current slot, reused across arrivals.
    members: Vec<SetId>,
    /// Next slot index to examine.
    slot: usize,
    /// Next element id to mint (= non-empty slots yielded so far).
    element: u32,
    /// Total non-empty slots (counted once by the validation pass).
    total: u32,
    /// Slot index of the most recently yielded arrival.
    last_yielded: Option<usize>,
}

impl<'a> TraceSource<'a> {
    /// Builds the source, translating frames to [`SetMeta`] and validating
    /// every slot's member list through [`Arrival::try_new`].
    ///
    /// # Errors
    ///
    /// * [`Error::EmptySet`] for a zero-packet frame (it could never
    ///   complete);
    /// * [`Error::BadWeight`] for a non-finite or negative frame weight;
    /// * [`Error::DuplicateMember`] if a slot lists a frame twice
    ///   (unreachable for a validated [`Trace`], load-bearing for anything
    ///   synthesized).
    pub fn new(trace: &'a Trace) -> Result<Self, Error> {
        let mut sets = Vec::with_capacity(trace.frames().len());
        for (i, f) in trace.frames().iter().enumerate() {
            if f.packets == 0 {
                return Err(Error::EmptySet(SetId(i as u32)));
            }
            if !f.weight.is_finite() || f.weight < 0.0 {
                return Err(Error::BadWeight {
                    set: SetId(i as u32),
                    weight: f.weight,
                });
            }
            sets.push(SetMeta::new(f.weight, f.packets));
        }
        let max_burst = trace.max_burst();
        let mut source = TraceSource {
            trace,
            sets,
            members: Vec::with_capacity(max_burst),
            slot: 0,
            element: 0,
            total: 0,
            last_yielded: None,
        };
        // Validation pass: every slot must form a legal arrival (and the
        // walk doubles as the non-empty-slot count).
        while source.advance()?.is_some() {}
        source.total = source.element;
        source.slot = 0;
        source.element = 0;
        source.last_yielded = None;
        Ok(source)
    }

    /// The original slot index of the most recently yielded arrival, or
    /// `None` before the first pull — the streamed, O(1) twin of
    /// [`MappedTrace::element_slots`]: consumers that need the mapping
    /// read it arrival by arrival as they pull (a full random-access table
    /// is exactly what streaming avoids holding).
    pub fn last_slot(&self) -> Option<usize> {
        self.last_yielded
    }

    /// Advances to the next non-empty slot, filling `self.members` sorted,
    /// and returns the arrival (checked); `None` at end of trace.
    fn advance(&mut self) -> Result<Option<Arrival<'_>>, Error> {
        let Some(yielded) = advance_to_nonempty_slot(self.trace, &mut self.slot, &mut self.members)
        else {
            return Ok(None);
        };
        let element = ElementId(self.element);
        self.last_yielded = Some(yielded);
        self.element += 1;
        Arrival::try_new(element, self.trace.capacity(), &self.members).map(Some)
    }
}

/// The one slot-reduction core both trace sources share: skips empty
/// slots, fills `members` with the next non-empty slot's frames (sorted
/// ascending), advances `slot` past it and returns its index — or `None`
/// at end of trace. Keeping this in one place means the borrowed and the
/// owned source cannot drift on what the reduction yields.
fn advance_to_nonempty_slot(
    trace: &Trace,
    slot: &mut usize,
    members: &mut Vec<SetId>,
) -> Option<usize> {
    let slots = trace.slots();
    while *slot < slots.len() && slots[*slot].is_empty() {
        *slot += 1;
    }
    if *slot >= slots.len() {
        return None;
    }
    members.clear();
    members.extend(slots[*slot].iter().map(|&f| SetId(f as u32)));
    members.sort_unstable();
    let yielded = *slot;
    *slot += 1;
    Some(yielded)
}

impl ArrivalSource for TraceSource<'_> {
    fn sets(&self) -> &[SetMeta] {
        &self.sets
    }

    fn next_arrival(&mut self) -> Option<Arrival<'_>> {
        // Construction already validated every slot; a failure here would
        // mean the trace mutated under us, which `&'a Trace` rules out.
        self.advance()
            .expect("trace slots validated at construction")
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some((self.total - self.element) as usize)
    }
}

/// [`TraceSource`]'s owning twin: takes the [`Trace`] by value, so the
/// stream can outlive the scope that generated the trace — what the spec
/// registry ([`spec`](crate::spec)) needs when it resolves an
/// [`osp_core::ScenarioSpec::VideoTrace`] into a boxed
/// [`ArrivalSource`]. Construction validates through [`TraceSource::new`]
/// and streaming replays the identical reduction: same set metadata, same
/// arrivals, same order.
#[derive(Debug, Clone)]
pub struct OwnedTraceSource {
    trace: Trace,
    sets: Vec<SetMeta>,
    /// Sorted member buffer of the current slot, reused across arrivals.
    members: Vec<SetId>,
    slot: usize,
    element: u32,
    total: u32,
}

impl OwnedTraceSource {
    /// Builds the source, validating every slot exactly as
    /// [`TraceSource::new`] does.
    ///
    /// # Errors
    ///
    /// Same contract as [`TraceSource::new`].
    pub fn new(trace: Trace) -> Result<Self, Error> {
        let (sets, total) = {
            let probe = TraceSource::new(&trace)?;
            let total = probe
                .remaining_hint()
                .expect("trace sources know their length") as u32;
            (probe.sets, total)
        };
        let max_burst = trace.max_burst();
        Ok(OwnedTraceSource {
            trace,
            sets,
            members: Vec::with_capacity(max_burst),
            slot: 0,
            element: 0,
            total,
        })
    }
}

impl ArrivalSource for OwnedTraceSource {
    fn sets(&self) -> &[SetMeta] {
        &self.sets
    }

    fn next_arrival(&mut self) -> Option<Arrival<'_>> {
        advance_to_nonempty_slot(&self.trace, &mut self.slot, &mut self.members)?;
        let element = ElementId(self.element);
        self.element += 1;
        // Construction validated every slot via TraceSource::new, and the
        // trace is owned (immutable since), so the unchecked constructor
        // is sound here.
        Some(Arrival::new(element, self.trace.capacity(), &self.members))
    }

    fn remaining_hint(&self) -> Option<usize> {
        Some((self.total - self.element) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Frame, FrameClass};
    use crate::trace::{video_trace, VideoTraceConfig};
    use osp_core::stats::InstanceStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frame(packets: u32, weight: f64) -> Frame {
        Frame {
            class: FrameClass::P,
            packets,
            weight,
        }
    }

    #[test]
    fn weights_and_sizes_carry_over() {
        let trace = Trace::new(
            vec![frame(2, 3.5), frame(1, 1.0)],
            vec![vec![0, 1], vec![0]],
            2,
        )
        .unwrap();
        let mapped = trace_to_instance(&trace);
        let inst = &mapped.instance;
        assert_eq!(inst.set(SetId(0)).weight(), 3.5);
        assert_eq!(inst.set(SetId(0)).size(), 2);
        assert_eq!(inst.set(SetId(1)).size(), 1);
        assert!(!inst.is_unit_capacity());
    }

    #[test]
    fn burst_size_equals_element_load() {
        let mut rng = StdRng::seed_from_u64(0);
        let trace = video_trace(&VideoTraceConfig::small(), &mut rng);
        let mapped = trace_to_instance(&trace);
        let st = InstanceStats::compute(&mapped.instance);
        assert_eq!(st.sigma_max as usize, trace.max_burst());
        // Incidence count is preserved: packets = Σ loads.
        let total_load: u32 = mapped.instance.arrivals().iter().map(|a| a.load()).sum();
        assert_eq!(total_load as usize, trace.total_packets());
    }

    #[test]
    fn trace_source_streams_the_mapped_instance() {
        let mut rng = StdRng::seed_from_u64(2);
        let trace = video_trace(&VideoTraceConfig::small(), &mut rng);
        let mapped = trace_to_instance(&trace);
        let mut source = TraceSource::new(&trace).unwrap();
        assert_eq!(source.sets(), mapped.instance.sets());
        assert_eq!(
            source.remaining_hint(),
            Some(mapped.instance.num_elements())
        );
        assert_eq!(source.last_slot(), None, "no arrival pulled yet");
        for i in 0..mapped.instance.num_elements() {
            let want = mapped.instance.arrival(i);
            let got = source.next_arrival().expect("stream too short");
            assert_eq!(got.element(), want.element(), "element {i}");
            assert_eq!(got.capacity(), want.capacity(), "capacity {i}");
            assert_eq!(got.members(), want.members(), "members {i}");
            // Slot bookkeeping matches MappedTrace's, arrival by arrival.
            assert_eq!(
                source.last_slot(),
                Some(mapped.element_slots[i]),
                "slot {i}"
            );
        }
        assert!(source.next_arrival().is_none());
        assert_eq!(source.remaining_hint(), Some(0));
    }

    #[test]
    fn owned_trace_source_matches_the_borrowing_one() {
        let mut rng = StdRng::seed_from_u64(4);
        let trace = video_trace(&VideoTraceConfig::small(), &mut rng);
        let mut borrowed = TraceSource::new(&trace).unwrap();
        let mut owned = OwnedTraceSource::new(trace.clone()).unwrap();
        assert_eq!(owned.sets(), borrowed.sets());
        assert_eq!(owned.remaining_hint(), borrowed.remaining_hint());
        while let Some(want) = borrowed.next_arrival() {
            let got = owned.next_arrival().expect("same stream length");
            assert_eq!(got.element(), want.element());
            assert_eq!(got.capacity(), want.capacity());
            assert_eq!(got.members(), want.members());
        }
        assert!(owned.next_arrival().is_none());
        assert_eq!(owned.remaining_hint(), Some(0));
        // The validation path is shared too.
        let bad = Trace::new(vec![frame(0, 1.0)], vec![], 1).unwrap();
        assert!(matches!(
            OwnedTraceSource::new(bad),
            Err(osp_core::Error::EmptySet(_))
        ));
    }

    #[test]
    fn trace_source_rejects_malformed_frames() {
        // Zero-packet frame: legal for Trace::new, meaningless for OSP.
        let trace = Trace::new(vec![frame(0, 1.0)], vec![], 1).unwrap();
        assert!(matches!(
            TraceSource::new(&trace),
            Err(osp_core::Error::EmptySet(_))
        ));
        // Non-finite weight.
        let trace = Trace::new(vec![frame(1, f64::NAN)], vec![vec![0]], 1).unwrap();
        assert!(matches!(
            TraceSource::new(&trace),
            Err(osp_core::Error::BadWeight { .. })
        ));
    }

    #[test]
    fn element_slots_monotone() {
        let mut rng = StdRng::seed_from_u64(1);
        let trace = video_trace(&VideoTraceConfig::small(), &mut rng);
        let mapped = trace_to_instance(&trace);
        assert!(mapped.element_slots.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(mapped.element_slots.len(), mapped.instance.num_elements());
    }
}
