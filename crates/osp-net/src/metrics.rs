//! Network-domain metrics extracted from an engine [`Outcome`].

use osp_core::{Instance, Outcome, SetId};

use crate::frame::FrameClass;
use crate::trace::Trace;

/// Goodput summary of one router run.
#[derive(Debug, Clone, PartialEq)]
pub struct GoodputReport {
    /// Frames delivered completely.
    pub frames_delivered: usize,
    /// Total frames offered.
    pub frames_offered: usize,
    /// Weight of completely delivered frames.
    pub weight_delivered: f64,
    /// Total weight offered.
    pub weight_offered: f64,
    /// Packets actually served (assigned to their frame).
    pub packets_served: usize,
    /// Packets offered.
    pub packets_offered: usize,
    /// Complete deliveries per class `[I, P, B]`.
    pub per_class_delivered: [usize; 3],
    /// Offered frames per class `[I, P, B]`.
    pub per_class_offered: [usize; 3],
}

impl GoodputReport {
    /// Fraction of frames delivered completely.
    pub fn frame_rate(&self) -> f64 {
        if self.frames_offered == 0 {
            0.0
        } else {
            self.frames_delivered as f64 / self.frames_offered as f64
        }
    }

    /// Fraction of offered weight delivered.
    pub fn weight_rate(&self) -> f64 {
        if self.weight_offered <= 0.0 {
            0.0
        } else {
            self.weight_delivered / self.weight_offered
        }
    }

    /// Raw packet service rate — the metric a frame-oblivious router
    /// optimizes, usefully contrasted with [`frame_rate`](Self::frame_rate).
    pub fn packet_rate(&self) -> f64 {
        if self.packets_offered == 0 {
            0.0
        } else {
            self.packets_served as f64 / self.packets_offered as f64
        }
    }
}

fn class_index(class: FrameClass) -> usize {
    match class {
        FrameClass::I => 0,
        FrameClass::P => 1,
        FrameClass::B => 2,
    }
}

/// Computes the goodput of `outcome` (from running any policy over the
/// instance mapped from `trace`).
///
/// # Panics
///
/// Panics if `outcome` does not belong to an instance with one set per
/// trace frame (lengths must agree).
pub fn goodput(trace: &Trace, instance: &Instance, outcome: &Outcome) -> GoodputReport {
    assert_eq!(
        trace.frames().len(),
        instance.num_sets(),
        "outcome does not match this trace"
    );
    let mut report = GoodputReport {
        frames_delivered: outcome.completed().len(),
        frames_offered: trace.frames().len(),
        weight_delivered: outcome.benefit(),
        weight_offered: trace.frames().iter().map(|f| f.weight).sum(),
        packets_served: outcome.decisions().iter().map(|d| d.len()).sum(),
        packets_offered: trace.total_packets(),
        per_class_delivered: [0; 3],
        per_class_offered: [0; 3],
    };
    for (i, f) in trace.frames().iter().enumerate() {
        report.per_class_offered[class_index(f.class)] += 1;
        if outcome.is_completed(SetId(i as u32)) {
            report.per_class_delivered[class_index(f.class)] += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use crate::mapping::trace_to_instance;
    use crate::policy::TailDrop;
    use osp_core::run;

    fn mini_trace() -> Trace {
        let frames = vec![
            Frame {
                class: FrameClass::I,
                packets: 2,
                weight: 4.0,
            },
            Frame {
                class: FrameClass::B,
                packets: 1,
                weight: 1.0,
            },
        ];
        // Slot 0: both frames collide (capacity 1); slot 1: frame 0 alone.
        Trace::new(frames, vec![vec![0, 1], vec![0]], 1).unwrap()
    }

    #[test]
    fn tail_drop_goodput_on_mini_trace() {
        let trace = mini_trace();
        let mapped = trace_to_instance(&trace);
        let out = run(&mapped.instance, &mut TailDrop::new()).unwrap();
        let g = goodput(&trace, &mapped.instance, &out);
        // TailDrop serves frame 0 in both slots: I-frame delivered.
        assert_eq!(g.frames_delivered, 1);
        assert_eq!(g.frames_offered, 2);
        assert_eq!(g.weight_delivered, 4.0);
        assert_eq!(g.per_class_delivered, [1, 0, 0]);
        assert_eq!(g.per_class_offered, [1, 0, 1]);
        assert_eq!(g.packets_served, 2);
        assert_eq!(g.packets_offered, 3);
        assert!((g.frame_rate() - 0.5).abs() < 1e-12);
        assert!((g.weight_rate() - 0.8).abs() < 1e-12);
        assert!((g.packet_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_rates_are_zero() {
        let trace = Trace::new(vec![], vec![], 1).unwrap();
        let mapped = trace_to_instance(&trace);
        let out = run(&mapped.instance, &mut TailDrop::new()).unwrap();
        let g = goodput(&trace, &mapped.instance, &out);
        assert_eq!(g.frame_rate(), 0.0);
        assert_eq!(g.weight_rate(), 0.0);
        assert_eq!(g.packet_rate(), 0.0);
    }
}
