//! # osp-net — the paper's networking scenarios, simulated
//!
//! The introduction of *Emek et al., PODC 2010* motivates online set
//! packing with two concrete systems; this crate builds both, plus the two
//! extensions the paper's conclusion poses as open problems:
//!
//! * **Video over a bottleneck router** (§1, scenario 1): video frames are
//!   fragmented into packets; bursts exceed the outgoing link's capacity;
//!   a frame is useful only if *all* its packets are served. [`frame`]
//!   models GOP-structured video, [`trace`] lays packets onto time slots,
//!   [`mapping`] performs the paper's reduction ("elements are time steps,
//!   sets are frames"), and [`policy`] supplies frame-oblivious router
//!   baselines (tail-drop, random-drop) to compare against `randPr`.
//! * **Multi-hop scheduling** (§1, scenario 2): packets traverse several
//!   store-and-forward hops; each (time, hop) pair is an element, each
//!   packet a set. [`multihop`] builds these instances and demonstrates
//!   the *distributed* implementation: every hop runs its own
//!   `HashRandPr` replica that agrees with the centralized run without
//!   any coordination.
//! * **Buffers** (open problem 2): [`buffer`] adds a FIFO buffer to the
//!   router and re-evaluates the policies as buffer space grows.
//! * **Partial frames** (open problem 3): [`partial`] re-scores an
//!   outcome when a frame is already useful at a θ-fraction of its
//!   packets (FEC-style recovery).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod frame;
pub mod mapping;
pub mod metrics;
pub mod multihop;
pub mod partial;
pub mod policy;
pub mod spec;
pub mod trace;

pub use frame::{Frame, FrameClass, GopConfig};
pub use mapping::{trace_to_instance, OwnedTraceSource, TraceSource};
pub use metrics::GoodputReport;
pub use spec::NetResolver;
pub use trace::{onoff_trace, poisson_trace, video_trace, Trace, VideoTraceConfig};

use std::fmt;

/// Errors from the network-scenario builders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Structurally impossible scenario parameters.
    BadParameters(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::BadParameters(msg) => write!(f, "bad scenario parameters: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}
