//! The full spec registry: everything [`CoreResolver`] resolves, plus the
//! osp-net algorithm and scenario variants.
//!
//! [`NetResolver`] is what the `osp-worker` binary (and any dispatcher
//! that may see network workloads) should use: it resolves
//!
//! * [`AlgorithmSpec::TailDrop`] / [`AlgorithmSpec::RandomDrop`] — the
//!   frame-oblivious router baselines ([`policy`](crate::policy));
//! * [`ScenarioSpec::VideoTrace`] — a seeded multiplexed video trace
//!   (standard GOP, [`video_trace`]) reduced
//!   to OSP arrivals through the owning stream
//!   ([`OwnedTraceSource`], the same
//!   reduction `tests/source_conformance.rs` pins bit-identical to the
//!   materializing [`trace_to_instance`](crate::mapping::trace_to_instance));
//!
//! and delegates every core variant to [`CoreResolver`], so the two
//! registries can never drift on the shared roster.

use rand::rngs::StdRng;
use rand::SeedableRng;

use osp_core::source::ArrivalSource;
use osp_core::spec::{AlgorithmSpec, CoreResolver, ScenarioSpec, SpecResolver};
use osp_core::{Error, OnlineAlgorithm};

use crate::frame::GopConfig;
use crate::mapping::OwnedTraceSource;
use crate::policy::{RandomDrop, TailDrop};
use crate::trace::{video_trace, VideoTraceConfig};

/// The workspace-wide registry: core + osp-net spec variants.
///
/// # Examples
///
/// ```
/// use osp_core::spec::{run_spec, AlgorithmSpec, JobSpec, ScenarioSpec};
/// use osp_net::spec::NetResolver;
///
/// let job = JobSpec {
///     scenario: ScenarioSpec::VideoTrace {
///         sources: 4,
///         frames_per_source: 10,
///         frame_interval: 8,
///         capacity: 4,
///         jitter: 0,
///     },
///     algorithm: AlgorithmSpec::TailDrop,
///     seed: 7,
/// };
/// let a = run_spec(&job, &NetResolver)?;
/// let b = run_spec(&job, &NetResolver)?;
/// assert_eq!(a, b); // same spec ⇒ bit-identical outcome
/// # Ok::<(), osp_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct NetResolver;

impl SpecResolver for NetResolver {
    fn algorithm(
        &self,
        spec: &AlgorithmSpec,
        seed: u64,
    ) -> Result<Box<dyn OnlineAlgorithm>, Error> {
        match spec {
            AlgorithmSpec::TailDrop => Ok(Box::new(TailDrop::new())),
            AlgorithmSpec::RandomDrop => Ok(Box::new(RandomDrop::from_seed(seed))),
            other => CoreResolver.algorithm(other, seed),
        }
    }

    fn scenario(&self, spec: &ScenarioSpec, seed: u64) -> Result<Box<dyn ArrivalSource>, Error> {
        match spec {
            ScenarioSpec::VideoTrace {
                sources,
                frames_per_source,
                frame_interval,
                capacity,
                jitter,
            } => {
                if *sources == 0
                    || *frames_per_source == 0
                    || *frame_interval == 0
                    || *capacity == 0
                {
                    return Err(Error::InvalidSpec(
                        "video trace needs nonzero sources, frames, interval and capacity".into(),
                    ));
                }
                let config = VideoTraceConfig {
                    sources: *sources,
                    frames_per_source: *frames_per_source,
                    gop: GopConfig::standard(),
                    frame_interval: *frame_interval,
                    capacity: *capacity,
                    jitter: *jitter,
                };
                let trace = video_trace(&config, &mut StdRng::seed_from_u64(seed));
                Ok(Box::new(OwnedTraceSource::new(trace)?))
            }
            other => CoreResolver.scenario(other, seed),
        }
    }

    fn roster(&self) -> Vec<String> {
        let mut roster = CoreResolver.roster();
        roster.extend(["video_trace", "tail_drop", "random_drop"].map(String::from));
        roster
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::trace_to_instance;
    use osp_core::gen::RandomInstanceConfig;
    use osp_core::run;
    use osp_core::spec::{run_spec, JobSpec};

    fn video_scenario() -> ScenarioSpec {
        ScenarioSpec::VideoTrace {
            sources: 4,
            frames_per_source: 12,
            frame_interval: 8,
            capacity: 4,
            jitter: 2,
        }
    }

    #[test]
    fn net_algorithms_resolve_and_match_direct_construction() {
        let job = JobSpec {
            scenario: video_scenario(),
            algorithm: AlgorithmSpec::RandomDrop,
            seed: 5,
        };
        let via_spec = run_spec(&job, &NetResolver).unwrap();
        // Direct reference: same trace, same reduction, same policy seed.
        let config = VideoTraceConfig {
            sources: 4,
            frames_per_source: 12,
            gop: GopConfig::standard(),
            frame_interval: 8,
            capacity: 4,
            jitter: 2,
        };
        let trace = video_trace(&config, &mut StdRng::seed_from_u64(5));
        let mapped = trace_to_instance(&trace);
        let direct = run(&mapped.instance, &mut RandomDrop::from_seed(5)).unwrap();
        assert_eq!(via_spec, direct);
    }

    #[test]
    fn core_variants_delegate() {
        let job = JobSpec {
            scenario: ScenarioSpec::Uniform(RandomInstanceConfig::unweighted(20, 50, 3)),
            algorithm: AlgorithmSpec::RandPr,
            seed: 9,
        };
        let via_net = run_spec(&job, &NetResolver).unwrap();
        let via_core = run_spec(&job, &CoreResolver).unwrap();
        assert_eq!(via_net, via_core);
    }

    #[test]
    fn video_scenario_can_host_core_algorithms() {
        let job = JobSpec {
            scenario: video_scenario(),
            algorithm: AlgorithmSpec::RandPr,
            seed: 3,
        };
        let a = run_spec(&job, &NetResolver).unwrap();
        let b = run_spec(&job, &NetResolver).unwrap();
        assert_eq!(a, b);
        assert!(!a.decisions().is_empty());
    }

    #[test]
    fn degenerate_video_parameters_are_invalid_specs() {
        let job = JobSpec {
            scenario: ScenarioSpec::VideoTrace {
                sources: 0,
                frames_per_source: 1,
                frame_interval: 1,
                capacity: 1,
                jitter: 0,
            },
            algorithm: AlgorithmSpec::TailDrop,
            seed: 0,
        };
        assert!(matches!(
            run_spec(&job, &NetResolver),
            Err(Error::InvalidSpec(_))
        ));
    }
}
