//! Multi-hop packet scheduling — the paper's second motivating scenario,
//! and the showcase for the *distributed* implementation of `randPr`.
//!
//! > "Let each pair (t, h) of time t and location h be modeled by an
//! > element of the OSP formulation, and let each packet be modeled by a
//! > set, whose elements are all time-location pairs which the packet is
//! > supposed to visit."
//!
//! Packets traverse a line of `H` store-and-forward hops, one hop per
//! slot, no buffering: a packet launched at time `t₀` occupies
//! `(t₀+h, h)` for `h = 0..H`. Each such pair can forward `b` packets.
//!
//! The point of the distributed implementation (§3.1) is that every hop
//! can run its **own** `HashRandPr` replica — sharing only the hash seed,
//! never communicating — and the global behavior is identical to the
//! centralized algorithm. [`federated_run`] does exactly that: one
//! replica per hop, each deciding only its own elements.

use rand::Rng;

use osp_core::algorithms::HashRandPr;
use osp_core::{Error, Instance, InstanceBuilder, OnlineAlgorithm, Outcome, Session, SetId};

use crate::NetError;

/// A multi-hop workload mapped to OSP.
#[derive(Debug, Clone, PartialEq)]
pub struct MultihopInstance {
    /// The OSP instance; set `i` = packet `i`.
    pub instance: Instance,
    /// For each element (in arrival order), the hop that owns the decision.
    pub element_hops: Vec<u32>,
    /// Number of hops in the line.
    pub hops: u32,
}

/// Configuration for [`multihop_instance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultihopConfig {
    /// Hops in the line (every packet traverses all of them).
    pub hops: u32,
    /// Number of packets.
    pub packets: usize,
    /// Packets launch at a uniformly random time in `0..launch_window`.
    pub launch_window: u32,
    /// Per-(time, hop) forwarding capacity.
    pub capacity: u32,
}

/// Builds the time-expanded OSP instance of the multi-hop scenario.
/// Elements arrive in chronological order (time, then hop), which is the
/// order the network would see them.
///
/// # Errors
///
/// Returns [`NetError::BadParameters`] if any parameter is zero.
pub fn multihop_instance<R: Rng + ?Sized>(
    config: &MultihopConfig,
    rng: &mut R,
) -> Result<MultihopInstance, NetError> {
    if config.hops == 0 || config.packets == 0 || config.launch_window == 0 || config.capacity == 0
    {
        return Err(NetError::BadParameters(
            "hops, packets, launch_window and capacity must be positive".into(),
        ));
    }
    let h = config.hops;

    // Launch times.
    let launches: Vec<u32> = (0..config.packets)
        .map(|_| rng.gen_range(0..config.launch_window))
        .collect();

    // Group packets by the (time, hop) pairs they occupy.
    use std::collections::BTreeMap;
    let mut cells: BTreeMap<(u32, u32), Vec<SetId>> = BTreeMap::new();
    for (p, &t0) in launches.iter().enumerate() {
        for hop in 0..h {
            cells
                .entry((t0 + hop, hop))
                .or_default()
                .push(SetId(p as u32));
        }
    }

    let mut b = InstanceBuilder::new();
    for _ in 0..config.packets {
        b.add_set(1.0, h);
    }
    let mut element_hops = Vec::with_capacity(cells.len());
    for ((_t, hop), members) in &cells {
        b.add_element(config.capacity, members);
        element_hops.push(*hop);
    }
    Ok(MultihopInstance {
        instance: b
            .build()
            .expect("every packet occupies exactly `hops` distinct cells"),
        element_hops,
        hops: h,
    })
}

/// Runs one independent [`HashRandPr`] replica per hop: replica `h`
/// decides exactly the elements owned by hop `h`, with no shared state
/// beyond the hash seed. Returns the combined outcome.
///
/// The `distributed_consistency` integration test (and the `multihop`
/// experiment) verify this equals the centralized run decision-for-
/// decision — the paper's "no communication needed" claim.
///
/// # Errors
///
/// Propagates engine validation errors (none occur for `HashRandPr`).
pub fn federated_run(
    mh: &MultihopInstance,
    independence: usize,
    seed: u64,
) -> Result<Outcome, Error> {
    let mut replicas: Vec<HashRandPr> = (0..mh.hops)
        .map(|_| HashRandPr::new(independence, seed))
        .collect();
    // Announce the sets to every replica; a Session tracks the global
    // bookkeeping while each replica decides only its own hop's elements.
    let mut primary = replicas
        .first()
        .cloned()
        .expect("hops >= 1 guaranteed by constructor");
    let mut session = Session::new(mh.instance.sets(), &mut primary);
    for r in &mut replicas {
        r.begin(mh.instance.sets());
    }
    for (arrival, &hop) in mh.instance.arrivals().iter().zip(&mh.element_hops) {
        let replica = &mut replicas[hop as usize];
        let decision = {
            let view = session.view();
            replica.decide(&arrival, &view)
        };
        session.apply_external(&arrival, decision)?;
    }
    Ok(session.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use osp_core::run;
    use osp_core::stats::InstanceStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn config() -> MultihopConfig {
        MultihopConfig {
            hops: 4,
            packets: 60,
            launch_window: 30,
            capacity: 1,
        }
    }

    #[test]
    fn every_packet_spans_all_hops() {
        let mut rng = StdRng::seed_from_u64(0);
        let mh = multihop_instance(&config(), &mut rng).unwrap();
        let st = InstanceStats::compute(&mh.instance);
        assert_eq!(st.m, 60);
        assert_eq!(st.uniform_size, Some(4));
        assert_eq!(mh.element_hops.len(), mh.instance.num_elements());
    }

    #[test]
    fn elements_arrive_chronologically() {
        let mut rng = StdRng::seed_from_u64(1);
        let mh = multihop_instance(&config(), &mut rng).unwrap();
        // The BTreeMap ordering guarantees (time, hop) lexicographic order;
        // within one time, hops ascend, so hop indices never decrease
        // within a time step. Weak sanity check: first element is hop 0.
        assert_eq!(mh.element_hops[0], 0);
    }

    #[test]
    fn federated_equals_centralized() {
        let mut rng = StdRng::seed_from_u64(2);
        let mh = multihop_instance(&config(), &mut rng).unwrap();
        for seed in 0..10 {
            let centralized = run(&mh.instance, &mut HashRandPr::new(8, seed)).unwrap();
            let federated = federated_run(&mh, 8, seed).unwrap();
            assert_eq!(
                centralized.completed(),
                federated.completed(),
                "seed {seed}"
            );
            assert_eq!(centralized.decisions(), federated.decisions());
        }
    }

    #[test]
    fn different_seeds_change_outcomes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mh = multihop_instance(&config(), &mut rng).unwrap();
        let outcomes: std::collections::HashSet<Vec<SetId>> = (0..20)
            .map(|seed| federated_run(&mh, 8, seed).unwrap().completed().to_vec())
            .collect();
        assert!(outcomes.len() > 1);
    }

    #[test]
    fn parameters_validated() {
        let mut rng = StdRng::seed_from_u64(4);
        for bad in [
            MultihopConfig {
                hops: 0,
                ..config()
            },
            MultihopConfig {
                packets: 0,
                ..config()
            },
            MultihopConfig {
                launch_window: 0,
                ..config()
            },
            MultihopConfig {
                capacity: 0,
                ..config()
            },
        ] {
            assert!(multihop_instance(&bad, &mut rng).is_err());
        }
    }
}
