//! Frame-oblivious router baselines.
//!
//! Real routers drop packets without knowing about frames. [`TailDrop`]
//! serves the first `b` packets of a burst (FIFO order — approximated here
//! by frame id, since earlier frames enqueue first); [`RandomDrop`] serves
//! a uniformly random subset. Neither looks at frame progress, which is
//! precisely why they waste capacity on frames that are already doomed —
//! the gap `randPr` closes in the `video` experiment.

use rand::rngs::StdRng;
use rand::SeedableRng;

use osp_core::algorithms::sample_in_place;
use osp_core::{Arrival, EngineView, OnlineAlgorithm, SetId, SetMeta};

/// FIFO tail-drop: serve the first `b(u)` packets of the burst, drop the
/// tail. Member lists are ordered by frame id, which matches enqueue order
/// for in-order sources.
#[derive(Debug, Clone, Copy, Default)]
pub struct TailDrop;

impl TailDrop {
    /// Creates the policy.
    pub fn new() -> Self {
        TailDrop
    }
}

impl OnlineAlgorithm for TailDrop {
    fn name(&self) -> String {
        "tail-drop".into()
    }

    fn begin(&mut self, _sets: &[SetMeta]) {}

    fn decide_into(&mut self, arrival: &Arrival<'_>, _view: &EngineView<'_>, out: &mut Vec<SetId>) {
        out.extend(
            arrival
                .members()
                .iter()
                .copied()
                .take(arrival.capacity() as usize),
        );
    }
}

/// Uniform random drop: serve a uniformly random `b(u)`-subset of the
/// burst, with no regard to frame state.
#[derive(Debug, Clone)]
pub struct RandomDrop {
    rng: StdRng,
}

impl RandomDrop {
    /// Creates the policy with a seeded RNG.
    pub fn from_seed(seed: u64) -> Self {
        RandomDrop {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl OnlineAlgorithm for RandomDrop {
    fn name(&self) -> String {
        "random-drop".into()
    }

    fn begin(&mut self, _sets: &[SetMeta]) {}

    fn decide_into(&mut self, arrival: &Arrival<'_>, _view: &EngineView<'_>, out: &mut Vec<SetId>) {
        out.extend_from_slice(arrival.members());
        sample_in_place(out, arrival.capacity() as usize, &mut self.rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osp_core::{run, InstanceBuilder};

    #[test]
    fn tail_drop_serves_prefix() {
        let mut b = InstanceBuilder::new();
        let s0 = b.add_set(1.0, 1);
        let s1 = b.add_set(1.0, 1);
        let s2 = b.add_set(1.0, 1);
        b.add_element(2, &[s2, s0, s1]); // builder sorts to [s0,s1,s2]
        let inst = b.build().unwrap();
        let out = run(&inst, &mut TailDrop::new()).unwrap();
        assert_eq!(out.completed(), &[s0, s1]);
    }

    #[test]
    fn random_drop_is_capacity_bounded_and_seed_deterministic() {
        let mut b = InstanceBuilder::new();
        let ids: Vec<SetId> = (0..6).map(|_| b.add_set(1.0, 1)).collect();
        b.add_element(2, &ids);
        let inst = b.build().unwrap();
        let a = run(&inst, &mut RandomDrop::from_seed(1)).unwrap();
        let b2 = run(&inst, &mut RandomDrop::from_seed(1)).unwrap();
        assert_eq!(a.completed().len(), 2);
        assert_eq!(a.completed(), b2.completed());
    }

    #[test]
    fn tail_drop_ignores_frame_progress() {
        // Frame s0 is nearly complete but has a high id... tail-drop still
        // prefers the low-id fresh frame: that's the pathology.
        let mut b = InstanceBuilder::new();
        let fresh = b.add_set(1.0, 1); // id 0
        let almost = b.add_set(1.0, 2); // id 1
        b.add_element(1, &[almost]);
        b.add_element(1, &[fresh, almost]);
        let inst = b.build().unwrap();
        let out = run(&inst, &mut TailDrop::new()).unwrap();
        assert!(out.is_completed(fresh));
        assert!(!out.is_completed(almost), "invested frame was wasted");
    }
}
