//! Buffered router extension — the paper's open problem 2.
//!
//! The OSP model is bufferless: packets not served in their arrival slot
//! are lost. Real routers queue. This module simulates a FIFO buffer of
//! `B` packets in front of the same capacity-`b` link and re-runs the
//! policies, so the `A1` experiment can chart goodput as a function of
//! buffer space — the paper conjectures buffers help, and they do, up to
//! the burst scale.
//!
//! Eviction policies on overflow:
//!
//! * [`BufferPolicy::DropTail`] — newest packet is dropped (commodity
//!   router behavior);
//! * [`BufferPolicy::PriorityEvict`] — the packet whose *frame* has the
//!   lowest `randPr` priority is dropped, i.e. the natural buffered
//!   adaptation of the paper's algorithm (one priority per frame from
//!   `R_w`, consistent across the run).

use rand::rngs::StdRng;
use rand::SeedableRng;

use osp_core::priority::Rw;

use crate::trace::Trace;

/// Eviction discipline when the buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferPolicy {
    /// Drop the arriving packet (FIFO tail drop).
    DropTail,
    /// Drop the buffered-or-arriving packet whose frame has the lowest
    /// `R_w` priority (seeded).
    PriorityEvict {
        /// Seed for the per-frame priority draw.
        seed: u64,
    },
}

/// Result of a buffered-router run.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferedRun {
    /// Frames whose every packet was eventually transmitted.
    pub frames_delivered: usize,
    /// Weight of completely delivered frames.
    pub weight_delivered: f64,
    /// Packets transmitted.
    pub packets_served: usize,
    /// Packets dropped on overflow.
    pub packets_dropped: usize,
}

/// Simulates the trace through a FIFO buffer of `buffer_size` packets and
/// a link serving `trace.capacity()` packets per slot.
///
/// `buffer_size = 0` reproduces the paper's bufferless model exactly for
/// [`BufferPolicy::DropTail`]-style service of the earliest arrivals.
pub fn simulate_buffered(trace: &Trace, buffer_size: usize, policy: BufferPolicy) -> BufferedRun {
    let n_frames = trace.frames().len();
    // Per-frame priorities for the priority policy (consistent, like randPr).
    let priorities: Vec<f64> = match policy {
        BufferPolicy::DropTail => vec![0.0; n_frames],
        BufferPolicy::PriorityEvict { seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            trace
                .frames()
                .iter()
                .map(|f| {
                    Rw::new(f.weight)
                        .map(|rw| rw.sample(&mut rng))
                        .unwrap_or(0.0)
                })
                .collect()
        }
    };

    let capacity = trace.capacity() as usize;
    let mut queue: Vec<usize> = Vec::new(); // frame ids, FIFO order
    let mut served = vec![0u32; n_frames];
    let mut packets_served = 0usize;
    let mut packets_dropped = 0usize;

    let drain = |queue: &mut Vec<usize>, served: &mut Vec<u32>, packets_served: &mut usize| {
        let take = capacity.min(queue.len());
        for f in queue.drain(..take) {
            served[f] += 1;
            *packets_served += 1;
        }
    };

    for slot in trace.slots() {
        // Arrivals enqueue; overflow resolved per policy.
        for &f in slot {
            if queue.len() < buffer_size + capacity {
                // The link can serve `capacity` this slot, so up to
                // buffer_size + capacity packets are effectively admissible.
                queue.push(f);
            } else {
                match policy {
                    BufferPolicy::DropTail => {
                        packets_dropped += 1;
                    }
                    BufferPolicy::PriorityEvict { .. } => {
                        // Evict the lowest-priority packet among queue+new.
                        let (worst_idx, worst_pri) = queue
                            .iter()
                            .enumerate()
                            .map(|(i, &qf)| (i, priorities[qf]))
                            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                            .expect("queue is non-empty when full");
                        if priorities[f] > worst_pri {
                            queue.remove(worst_idx);
                            queue.push(f);
                        }
                        packets_dropped += 1;
                    }
                }
            }
        }
        drain(&mut queue, &mut served, &mut packets_served);
    }
    // Drain the residual queue after the last arrival slot.
    while !queue.is_empty() {
        drain(&mut queue, &mut served, &mut packets_served);
    }

    let mut frames_delivered = 0usize;
    let mut weight_delivered = 0.0;
    for (i, f) in trace.frames().iter().enumerate() {
        if served[i] == f.packets {
            frames_delivered += 1;
            weight_delivered += f.weight;
        }
    }
    BufferedRun {
        frames_delivered,
        weight_delivered,
        packets_served,
        packets_dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Frame, FrameClass};
    use crate::trace::{video_trace, VideoTraceConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frame(packets: u32, weight: f64) -> Frame {
        Frame {
            class: FrameClass::P,
            packets,
            weight,
        }
    }

    #[test]
    fn no_loss_when_under_capacity() {
        let trace = Trace::new(
            vec![frame(2, 1.0), frame(1, 1.0)],
            vec![vec![0], vec![0, 1]],
            2,
        )
        .unwrap();
        let run = simulate_buffered(&trace, 0, BufferPolicy::DropTail);
        assert_eq!(run.frames_delivered, 2);
        assert_eq!(run.packets_dropped, 0);
        assert_eq!(run.packets_served, 3);
    }

    #[test]
    fn burst_overflow_drops_without_buffer() {
        // Burst of 3 into capacity 1, no buffer: 2 drops.
        let trace = Trace::new(
            vec![frame(1, 1.0), frame(1, 1.0), frame(1, 1.0)],
            vec![vec![0, 1, 2]],
            1,
        )
        .unwrap();
        let run = simulate_buffered(&trace, 0, BufferPolicy::DropTail);
        assert_eq!(run.frames_delivered, 1);
        assert_eq!(run.packets_dropped, 2);
    }

    #[test]
    fn buffer_absorbs_the_burst() {
        let trace = Trace::new(
            vec![frame(1, 1.0), frame(1, 1.0), frame(1, 1.0)],
            vec![vec![0, 1, 2]],
            1,
        )
        .unwrap();
        let run = simulate_buffered(&trace, 2, BufferPolicy::DropTail);
        assert_eq!(run.frames_delivered, 3);
        assert_eq!(run.packets_dropped, 0);
    }

    #[test]
    fn goodput_monotone_in_buffer_size() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut cfg = VideoTraceConfig::small();
        cfg.sources = 8;
        cfg.capacity = 3;
        let trace = video_trace(&cfg, &mut rng);
        let mut last = 0usize;
        for b in [0usize, 2, 8, 32] {
            let run = simulate_buffered(&trace, b, BufferPolicy::DropTail);
            assert!(
                run.frames_delivered >= last,
                "buffer {b} delivered {} < {last}",
                run.frames_delivered
            );
            last = run.frames_delivered;
        }
    }

    #[test]
    fn priority_evict_prefers_heavy_frames() {
        // Burst: heavy 1-packet frame arrives after the buffer is full of
        // a light frame's packets; priority eviction should still deliver
        // the heavy frame in (almost) all seedings.
        let mut delivered_heavy = 0u64;
        let trials = 100u64;
        for seed in 0..trials {
            let trace = Trace::new(
                vec![frame(1, 0.1), frame(1, 0.1), frame(1, 100.0)],
                vec![vec![0, 1, 2]],
                1,
            )
            .unwrap();
            let run = simulate_buffered(&trace, 0, BufferPolicy::PriorityEvict { seed });
            if run.weight_delivered >= 100.0 {
                delivered_heavy += 1;
            }
        }
        assert!(
            delivered_heavy > trials * 8 / 10,
            "heavy frame delivered only {delivered_heavy}/{trials}"
        );
    }

    #[test]
    fn residual_queue_is_flushed() {
        // All packets arrive in slot 0; capacity 1 and buffer 4: service
        // continues after arrivals end.
        let trace = Trace::new(
            vec![frame(1, 1.0), frame(1, 1.0), frame(1, 1.0)],
            vec![vec![0, 1, 2]],
            1,
        )
        .unwrap();
        let run = simulate_buffered(&trace, 4, BufferPolicy::DropTail);
        assert_eq!(run.packets_served, 3);
    }
}
