//! Packet traces: which frame has a packet in which time slot.
//!
//! A [`Trace`] is the bridge between traffic generation and the OSP
//! reduction: slot `t` lists the frames with a packet arriving at `t`, and
//! the link serves at most `capacity` packets per slot. The invariant that
//! a frame has **at most one packet per slot** keeps the reduction to OSP
//! lossless (membership of a set in an element is binary).

use rand::Rng;

use crate::frame::{Frame, GopConfig};

/// A packet-level trace at slot granularity.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    frames: Vec<Frame>,
    /// `slots[t]` = frame indices with a packet arriving in slot `t`.
    slots: Vec<Vec<usize>>,
    capacity: u32,
}

impl Trace {
    /// Builds a trace from parts, validating the invariants: every frame
    /// appears in exactly `frame.packets` distinct slots, at most once per
    /// slot, and `capacity ≥ 1`.
    ///
    /// Returns `None` on any violation.
    pub fn new(frames: Vec<Frame>, slots: Vec<Vec<usize>>, capacity: u32) -> Option<Self> {
        if capacity == 0 {
            return None;
        }
        let mut counts = vec![0u32; frames.len()];
        for slot in &slots {
            let mut seen = std::collections::HashSet::new();
            for &f in slot {
                if f >= frames.len() || !seen.insert(f) {
                    return None;
                }
                counts[f] += 1;
            }
        }
        if counts.iter().zip(&frames).any(|(&c, f)| c != f.packets) {
            return None;
        }
        Some(Trace {
            frames,
            slots,
            capacity,
        })
    }

    /// The frames of the trace, indexed by frame id.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// The slot contents: `slots()[t]` lists frame ids with a packet at `t`.
    pub fn slots(&self) -> &[Vec<usize>] {
        &self.slots
    }

    /// Link capacity in packets per slot.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Total packets in the trace.
    pub fn total_packets(&self) -> usize {
        self.slots.iter().map(|s| s.len()).sum()
    }

    /// The largest burst (σ_max of the induced OSP instance).
    pub fn max_burst(&self) -> usize {
        self.slots.iter().map(|s| s.len()).max().unwrap_or(0)
    }
}

/// Configuration for [`video_trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct VideoTraceConfig {
    /// Number of parallel video sources multiplexed onto the link.
    pub sources: usize,
    /// Frames emitted per source.
    pub frames_per_source: usize,
    /// GOP structure shared by the sources.
    pub gop: GopConfig,
    /// Slots between consecutive frames of one source.
    pub frame_interval: u32,
    /// Link capacity (packets per slot).
    pub capacity: u32,
    /// Per-packet jitter: each packet's slot is perturbed by a uniform
    /// offset in `0..=jitter` (0 = in-order back-to-back packets). When a
    /// perturbed packet would land in a slot already holding one of its
    /// frame's packets, it probes forward to the next free slot, keeping
    /// the trace invariant intact.
    pub jitter: u32,
}

impl VideoTraceConfig {
    /// A small default: 4 sources, 30 frames each, standard GOP, one frame
    /// per 8 slots, capacity 4, no jitter.
    pub fn small() -> Self {
        VideoTraceConfig {
            sources: 4,
            frames_per_source: 30,
            gop: GopConfig::standard(),
            frame_interval: 8,
            capacity: 4,
            jitter: 0,
        }
    }
}

/// Generates a multiplexed video trace: each source emits GOP-patterned
/// frames every `frame_interval` slots (with a random phase), and each
/// frame's packets occupy consecutive slots from its emission point —
/// probing forward when the frame already has a packet in a slot, so the
/// trace invariant holds by construction.
///
/// # Panics
///
/// Panics if `sources`, `frames_per_source`, `frame_interval` or
/// `capacity` is zero.
pub fn video_trace<R: Rng + ?Sized>(config: &VideoTraceConfig, rng: &mut R) -> Trace {
    assert!(config.sources >= 1, "need at least one source");
    assert!(config.frames_per_source >= 1, "need at least one frame");
    assert!(
        config.frame_interval >= 1,
        "frame interval must be positive"
    );
    assert!(config.capacity >= 1, "capacity must be positive");

    let mut frames: Vec<Frame> = Vec::new();
    let mut placements: Vec<(usize, usize)> = Vec::new(); // (slot, frame)
    for _ in 0..config.sources {
        let phase = rng.gen_range(0..config.frame_interval) as usize;
        for i in 0..config.frames_per_source {
            let frame = config.gop.sample_frame(i, rng);
            let id = frames.len();
            frames.push(frame);
            let start = phase + i * config.frame_interval as usize;
            let mut taken: Vec<usize> = Vec::with_capacity(frame.packets as usize);
            for p in 0..frame.packets as usize {
                let mut slot = start
                    + p
                    + if config.jitter > 0 {
                        rng.gen_range(0..=config.jitter) as usize
                    } else {
                        0
                    };
                // Keep one packet per frame per slot: probe forward.
                while taken.contains(&slot) {
                    slot += 1;
                }
                taken.push(slot);
                placements.push((slot, id));
            }
        }
    }
    let horizon = placements.iter().map(|&(s, _)| s).max().unwrap_or(0) + 1;
    let mut slots: Vec<Vec<usize>> = vec![Vec::new(); horizon];
    for (slot, frame) in placements {
        slots[slot].push(frame);
    }
    Trace::new(frames, slots, config.capacity)
        .expect("video generator keeps one packet per frame per slot")
}

/// Generates a Poisson trace: frames arrive at rate `lambda` per slot over
/// `horizon` slots; each frame has `packets ∈ packet_range` unit-weight
/// packets occupying consecutive slots from its arrival.
///
/// # Panics
///
/// Panics if `lambda ≤ 0`, `horizon == 0`, `capacity == 0` or the packet
/// range is empty/zero.
pub fn poisson_trace<R: Rng + ?Sized>(
    lambda: f64,
    horizon: usize,
    packet_range: (u32, u32),
    capacity: u32,
    rng: &mut R,
) -> Trace {
    assert!(lambda > 0.0, "lambda must be positive");
    assert!(horizon >= 1 && capacity >= 1);
    let (lo, hi) = packet_range;
    assert!(lo >= 1 && lo <= hi, "invalid packet range");

    let mut frames: Vec<Frame> = Vec::new();
    let mut placements: Vec<(usize, usize)> = Vec::new();
    for t in 0..horizon {
        // Number of frame arrivals in this slot ~ Poisson(lambda) via
        // inversion (lambda is small in these workloads).
        let arrivals = poisson_sample(lambda, rng);
        for _ in 0..arrivals {
            let packets = rng.gen_range(lo..=hi);
            let id = frames.len();
            frames.push(Frame {
                class: crate::frame::FrameClass::P,
                packets,
                weight: 1.0,
            });
            for p in 0..packets as usize {
                placements.push((t + p, id));
            }
        }
    }
    let max_slot = placements.iter().map(|&(s, _)| s).max().unwrap_or(0);
    let mut slots: Vec<Vec<usize>> = vec![Vec::new(); max_slot + 1];
    for (slot, frame) in placements {
        slots[slot].push(frame);
    }
    Trace::new(frames, slots, capacity).expect("poisson generator is consistent")
}

/// Generates an on-off (Gilbert) bursty trace: a two-state Markov chain
/// alternates between an *on* state emitting `burst_rate` frames per slot
/// and a silent *off* state. `p_on_off` and `p_off_on` are the per-slot
/// transition probabilities; small values give long, heavy bursts — the
/// regime where bufferless drops hurt frame goodput the most.
///
/// Frames carry `packets ∈ packet_range` unit-weight packets laid on
/// consecutive slots.
///
/// # Panics
///
/// Panics if a probability is outside `(0, 1]`, if `burst_rate == 0`, if
/// `horizon == 0` or `capacity == 0`, or if the packet range is
/// empty/zero.
pub fn onoff_trace<R: Rng + ?Sized>(
    burst_rate: u32,
    p_on_off: f64,
    p_off_on: f64,
    horizon: usize,
    packet_range: (u32, u32),
    capacity: u32,
    rng: &mut R,
) -> Trace {
    assert!(
        (0.0..=1.0).contains(&p_on_off) && p_on_off > 0.0,
        "p_on_off in (0,1]"
    );
    assert!(
        (0.0..=1.0).contains(&p_off_on) && p_off_on > 0.0,
        "p_off_on in (0,1]"
    );
    assert!(burst_rate >= 1 && horizon >= 1 && capacity >= 1);
    let (lo, hi) = packet_range;
    assert!(lo >= 1 && lo <= hi, "invalid packet range");

    let mut frames: Vec<Frame> = Vec::new();
    let mut placements: Vec<(usize, usize)> = Vec::new();
    let mut on = rng.gen_bool(p_off_on / (p_off_on + p_on_off)); // stationary start
    for t in 0..horizon {
        if on {
            for _ in 0..burst_rate {
                let packets = rng.gen_range(lo..=hi);
                let id = frames.len();
                frames.push(Frame {
                    class: crate::frame::FrameClass::P,
                    packets,
                    weight: 1.0,
                });
                for p in 0..packets as usize {
                    placements.push((t + p, id));
                }
            }
            if rng.gen_bool(p_on_off) {
                on = false;
            }
        } else if rng.gen_bool(p_off_on) {
            on = true;
        }
    }
    let max_slot = placements.iter().map(|&(s, _)| s).max().unwrap_or(0);
    let mut slots: Vec<Vec<usize>> = vec![Vec::new(); max_slot + 1];
    for (slot, frame) in placements {
        slots[slot].push(frame);
    }
    Trace::new(frames, slots, capacity).expect("on-off generator is consistent")
}

/// Samples a Poisson(λ) count by inversion (adequate for small λ).
fn poisson_sample<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> usize {
    let threshold = (-lambda).exp();
    let mut count = 0usize;
    let mut product = rng.gen::<f64>();
    while product > threshold {
        count += 1;
        product *= rng.gen::<f64>();
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameClass;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn frame(packets: u32) -> Frame {
        Frame {
            class: FrameClass::P,
            packets,
            weight: 1.0,
        }
    }

    #[test]
    fn trace_validation() {
        // Valid: frame 0 in slots 0 and 1.
        assert!(Trace::new(vec![frame(2)], vec![vec![0], vec![0]], 1).is_some());
        // Frame appears twice in a slot.
        assert!(Trace::new(vec![frame(2)], vec![vec![0, 0]], 1).is_none());
        // Count mismatch.
        assert!(Trace::new(vec![frame(3)], vec![vec![0], vec![0]], 1).is_none());
        // Unknown frame id.
        assert!(Trace::new(vec![frame(1)], vec![vec![1]], 1).is_none());
        // Zero capacity.
        assert!(Trace::new(vec![frame(1)], vec![vec![0]], 0).is_none());
    }

    #[test]
    fn video_trace_is_consistent() {
        let mut rng = StdRng::seed_from_u64(0);
        let trace = video_trace(&VideoTraceConfig::small(), &mut rng);
        assert_eq!(trace.frames().len(), 4 * 30);
        let total: u32 = trace.frames().iter().map(|f| f.packets).sum();
        assert_eq!(trace.total_packets() as u32, total);
        assert!(trace.max_burst() >= 1);
    }

    #[test]
    fn video_trace_deterministic() {
        let cfg = VideoTraceConfig::small();
        let a = video_trace(&cfg, &mut StdRng::seed_from_u64(3));
        let b = video_trace(&cfg, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn poisson_trace_is_consistent() {
        let mut rng = StdRng::seed_from_u64(1);
        let trace = poisson_trace(0.5, 200, (2, 5), 2, &mut rng);
        assert!(trace.frames().len() > 10, "expected a few dozen frames");
        for f in trace.frames() {
            assert!((2..=5).contains(&f.packets));
        }
    }

    #[test]
    fn poisson_sampler_mean_is_lambda() {
        let mut rng = StdRng::seed_from_u64(2);
        let lambda = 2.5;
        let n = 20_000;
        let total: usize = (0..n).map(|_| poisson_sample(lambda, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn jitter_preserves_trace_invariants() {
        let mut cfg = VideoTraceConfig::small();
        cfg.jitter = 5;
        for seed in 0..10 {
            let trace = video_trace(&cfg, &mut StdRng::seed_from_u64(seed));
            // Trace::new already validates; double-check packet totals.
            let total: u32 = trace.frames().iter().map(|f| f.packets).sum();
            assert_eq!(trace.total_packets() as u32, total, "seed {seed}");
        }
    }

    #[test]
    fn jitter_spreads_bursts() {
        let mut cfg = VideoTraceConfig::small();
        cfg.sources = 12;
        let tight = video_trace(&cfg, &mut StdRng::seed_from_u64(4));
        cfg.jitter = 6;
        let spread = video_trace(&cfg, &mut StdRng::seed_from_u64(4));
        // Same packets over a longer horizon: bursts can only flatten.
        assert!(spread.slots().len() >= tight.slots().len());
    }

    #[test]
    fn onoff_trace_is_consistent_and_bursty() {
        let mut rng = StdRng::seed_from_u64(6);
        // Long on-periods: heavy bursts.
        let bursty = onoff_trace(4, 0.05, 0.05, 400, (1, 3), 2, &mut rng);
        assert!(!bursty.frames().is_empty());
        // A bursty trace must have slots far above its average occupancy.
        let avg = bursty.total_packets() as f64 / bursty.slots().len() as f64;
        assert!(
            bursty.max_burst() as f64 > avg * 2.0,
            "max burst {} vs avg {avg}",
            bursty.max_burst()
        );
    }

    #[test]
    fn onoff_respects_frame_invariants() {
        let mut rng = StdRng::seed_from_u64(7);
        let trace = onoff_trace(2, 0.3, 0.3, 200, (2, 4), 1, &mut rng);
        // Trace::new validated: each frame appears once per slot and
        // exactly `packets` times overall. Re-validate the counts here.
        let mut counts = vec![0u32; trace.frames().len()];
        for slot in trace.slots() {
            for &f in slot {
                counts[f] += 1;
            }
        }
        for (f, frame) in trace.frames().iter().enumerate() {
            assert_eq!(counts[f], frame.packets);
        }
    }

    #[test]
    #[should_panic(expected = "p_on_off")]
    fn onoff_validates_probabilities() {
        let mut rng = StdRng::seed_from_u64(8);
        let _ = onoff_trace(1, 0.0, 0.5, 10, (1, 1), 1, &mut rng);
    }

    #[test]
    fn more_sources_bigger_bursts() {
        let mut cfg = VideoTraceConfig::small();
        let quiet = video_trace(&cfg, &mut StdRng::seed_from_u64(5));
        cfg.sources = 16;
        let busy = video_trace(&cfg, &mut StdRng::seed_from_u64(5));
        assert!(busy.max_burst() > quiet.max_burst());
    }
}
