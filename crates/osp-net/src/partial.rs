//! Partial-frame payoff — the paper's open problem 3, as an evaluation
//! mode.
//!
//! > "A set is gained in OSP only if all its elements were assigned to it.
//! > What about the case where the set can be gained even if a few
//! > elements are missing?"
//!
//! With forward error correction, a frame is decodable once a θ-fraction
//! of its packets arrive. [`partial_benefit`] re-scores an existing
//! [`Outcome`] under that rule: the algorithms don't change, only the
//! payoff — which is exactly how one would evaluate FEC sensitivity.

use osp_core::{Instance, Outcome};

/// Packets each set actually received (assigned to it) during the run.
pub fn delivered_counts(instance: &Instance, outcome: &Outcome) -> Vec<u32> {
    let mut counts = vec![0u32; instance.num_sets()];
    for decision in outcome.decisions() {
        for s in decision {
            counts[s.index()] += 1;
        }
    }
    counts
}

/// Total weight of sets that received at least `ceil(θ·|S|)` of their
/// elements.
///
/// `θ = 1.0` reproduces the strict OSP benefit; lower θ models FEC-style
/// recovery. θ is clamped into `(0, 1]` — a θ of 0 would pay every frame
/// unconditionally, which is never the intended question.
///
/// # Examples
///
/// ```
/// use osp_core::prelude::*;
/// use osp_net::partial::partial_benefit;
///
/// let mut b = InstanceBuilder::new();
/// let s = b.add_set(1.0, 2);
/// let rival = b.add_set(1.0, 1);
/// b.add_element(1, &[s]);
/// b.add_element(1, &[s, rival]);
/// let inst = b.build()?;
/// let out = run(&inst, &mut GreedyOnline::new(TieBreak::ByMostProgress))?;
/// // Greedy keeps s both times; with θ=0.5, even one packet would do.
/// assert_eq!(partial_benefit(&inst, &out, 1.0), 1.0);
/// assert_eq!(partial_benefit(&inst, &out, 0.5), 1.0);
/// # Ok::<(), osp_core::Error>(())
/// ```
pub fn partial_benefit(instance: &Instance, outcome: &Outcome, theta: f64) -> f64 {
    let theta = theta.clamp(f64::MIN_POSITIVE, 1.0);
    let counts = delivered_counts(instance, outcome);
    instance
        .sets()
        .iter()
        .enumerate()
        .filter(|(i, meta)| {
            let needed = (theta * f64::from(meta.size())).ceil() as u32;
            counts[*i] >= needed.max(1)
        })
        .map(|(_, meta)| meta.weight())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use osp_core::algorithms::{GreedyOnline, TieBreak};
    use osp_core::{run, InstanceBuilder};

    /// Three-packet frame that loses exactly one packet to a heavier rival.
    fn two_thirds_delivered() -> (Instance, Outcome) {
        let mut b = InstanceBuilder::new();
        let frame = b.add_set(1.0, 3);
        let rival = b.add_set(5.0, 1);
        b.add_element(1, &[frame]);
        b.add_element(1, &[frame]);
        b.add_element(1, &[frame, rival]);
        let inst = b.build().unwrap();
        let out = run(&inst, &mut GreedyOnline::new(TieBreak::ByWeight)).unwrap();
        (inst, out)
    }

    #[test]
    fn strict_theta_matches_benefit() {
        let (inst, out) = two_thirds_delivered();
        // Frame got 2/3 packets, rival completed.
        assert_eq!(out.benefit(), 5.0);
        assert_eq!(partial_benefit(&inst, &out, 1.0), 5.0);
    }

    #[test]
    fn lower_theta_recovers_the_frame() {
        let (inst, out) = two_thirds_delivered();
        // θ = 2/3: frame needs ceil(2) = 2 packets — it has exactly 2.
        assert_eq!(partial_benefit(&inst, &out, 2.0 / 3.0), 6.0);
        assert_eq!(partial_benefit(&inst, &out, 0.5), 6.0);
    }

    #[test]
    fn theta_is_clamped() {
        let (inst, out) = two_thirds_delivered();
        // θ ≤ 0 clamps to "at least one packet".
        assert_eq!(partial_benefit(&inst, &out, 0.0), 6.0);
        assert_eq!(partial_benefit(&inst, &out, 2.0), 5.0);
    }

    #[test]
    fn delivered_counts_match_decisions() {
        let (inst, out) = two_thirds_delivered();
        let counts = delivered_counts(&inst, &out);
        assert_eq!(counts, vec![2, 1]);
    }

    #[test]
    fn zero_delivery_pays_nothing_even_at_tiny_theta() {
        let mut b = InstanceBuilder::new();
        let starved = b.add_set(1.0, 1);
        let winner = b.add_set(9.0, 1);
        b.add_element(1, &[starved, winner]);
        let inst = b.build().unwrap();
        let out = run(&inst, &mut GreedyOnline::new(TieBreak::ByWeight)).unwrap();
        assert_eq!(partial_benefit(&inst, &out, 0.01), 9.0);
    }
}
