//! Video frames and GOP (group-of-pictures) structure.
//!
//! MPEG-style video interleaves large intra-coded I-frames with medium
//! P-frames and small B-frames; losing an I-frame costs far more than
//! losing a B-frame. The weight knob below is what makes the *weighted*
//! OSP machinery earn its keep on realistic traffic.

use rand::Rng;

/// Frame type within a GOP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameClass {
    /// Intra-coded: largest, most valuable.
    I,
    /// Predicted: medium.
    P,
    /// Bidirectional: smallest, least valuable.
    B,
}

impl FrameClass {
    /// Parses a GOP pattern character (`'I'`, `'P'`, `'B'`).
    pub fn from_char(c: char) -> Option<FrameClass> {
        match c {
            'I' => Some(FrameClass::I),
            'P' => Some(FrameClass::P),
            'B' => Some(FrameClass::B),
            _ => None,
        }
    }
}

/// One video frame: its class, packet count and weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Frame {
    /// Frame class.
    pub class: FrameClass,
    /// Number of packets after fragmentation (≥ 1).
    pub packets: u32,
    /// Value of delivering the frame completely.
    pub weight: f64,
}

/// GOP pattern plus per-class packet counts and weights.
///
/// # Examples
///
/// ```
/// use osp_net::frame::GopConfig;
///
/// let gop = GopConfig::standard();
/// assert_eq!(gop.pattern().len(), 9); // IBBPBBPBB
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GopConfig {
    pattern: Vec<FrameClass>,
    /// Packet-count range `[lo, hi]` per class, indexed I/P/B.
    packet_range: [(u32, u32); 3],
    /// Weight per class, indexed I/P/B.
    weights: [f64; 3],
}

impl GopConfig {
    /// The classic `IBBPBBPBB` pattern with I-frames of 8–12 packets,
    /// P-frames of 3–5 and B-frames of 1–2, weighted 4/2/1.
    pub fn standard() -> Self {
        GopConfig::new("IBBPBBPBB", [(8, 12), (3, 5), (1, 2)], [4.0, 2.0, 1.0])
            .expect("standard pattern is valid")
    }

    /// Creates a GOP configuration from a pattern string.
    ///
    /// `packet_range[c]` gives the inclusive packet-count range for class
    /// `c` (order: I, P, B) and `weights[c]` the frame weight.
    ///
    /// Returns `None` if the pattern is empty, contains characters other
    /// than `IPB`, or a range is inverted/zero.
    pub fn new(pattern: &str, packet_range: [(u32, u32); 3], weights: [f64; 3]) -> Option<Self> {
        let classes: Option<Vec<FrameClass>> = pattern.chars().map(FrameClass::from_char).collect();
        let classes = classes?;
        if classes.is_empty() {
            return None;
        }
        for &(lo, hi) in &packet_range {
            if lo == 0 || lo > hi {
                return None;
            }
        }
        if weights.iter().any(|w| !w.is_finite() || *w <= 0.0) {
            return None;
        }
        Some(GopConfig {
            pattern: classes,
            packet_range,
            weights,
        })
    }

    /// The frame-class sequence of one GOP.
    pub fn pattern(&self) -> &[FrameClass] {
        &self.pattern
    }

    fn class_index(class: FrameClass) -> usize {
        match class {
            FrameClass::I => 0,
            FrameClass::P => 1,
            FrameClass::B => 2,
        }
    }

    /// Samples the `i`-th frame of a stream (classes cycle through the
    /// pattern; the packet count is drawn from the class range).
    pub fn sample_frame<R: Rng + ?Sized>(&self, i: usize, rng: &mut R) -> Frame {
        let class = self.pattern[i % self.pattern.len()];
        let (lo, hi) = self.packet_range[Self::class_index(class)];
        Frame {
            class,
            packets: rng.gen_range(lo..=hi),
            weight: self.weights[Self::class_index(class)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pattern_parsing() {
        assert!(GopConfig::new("IBB", [(1, 2), (1, 2), (1, 2)], [1.0, 1.0, 1.0]).is_some());
        assert!(GopConfig::new("IXB", [(1, 2), (1, 2), (1, 2)], [1.0, 1.0, 1.0]).is_none());
        assert!(GopConfig::new("", [(1, 2), (1, 2), (1, 2)], [1.0, 1.0, 1.0]).is_none());
        assert!(GopConfig::new("I", [(0, 2), (1, 2), (1, 2)], [1.0, 1.0, 1.0]).is_none());
        assert!(GopConfig::new("I", [(3, 2), (1, 2), (1, 2)], [1.0, 1.0, 1.0]).is_none());
        assert!(GopConfig::new("I", [(1, 2), (1, 2), (1, 2)], [0.0, 1.0, 1.0]).is_none());
    }

    #[test]
    fn classes_cycle_through_pattern() {
        let gop = GopConfig::standard();
        let mut rng = StdRng::seed_from_u64(0);
        let f0 = gop.sample_frame(0, &mut rng);
        let f9 = gop.sample_frame(9, &mut rng);
        assert_eq!(f0.class, FrameClass::I);
        assert_eq!(f9.class, FrameClass::I);
        let f1 = gop.sample_frame(1, &mut rng);
        assert_eq!(f1.class, FrameClass::B);
    }

    #[test]
    fn packet_counts_respect_ranges() {
        let gop = GopConfig::standard();
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..100 {
            let f = gop.sample_frame(i, &mut rng);
            let (lo, hi) = match f.class {
                FrameClass::I => (8, 12),
                FrameClass::P => (3, 5),
                FrameClass::B => (1, 2),
            };
            assert!((lo..=hi).contains(&f.packets));
            assert!(f.weight > 0.0);
        }
    }

    #[test]
    fn i_frames_heavier_than_b_frames() {
        let gop = GopConfig::standard();
        let mut rng = StdRng::seed_from_u64(2);
        let i_frame = gop.sample_frame(0, &mut rng);
        let b_frame = gop.sample_frame(1, &mut rng);
        assert!(i_frame.weight > b_frame.weight);
    }
}
