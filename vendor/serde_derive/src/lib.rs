//! `#[derive(Serialize, Deserialize)]` for the vendored serde stub.
//!
//! Hand-rolled token parsing (no `syn`/`quote` available offline). Supports
//! the shapes this workspace uses: structs with named fields (serialized as
//! JSON objects), newtype structs (serialized transparently as the inner
//! value), and other tuple structs (serialized as arrays). Generics and
//! `#[serde(...)]` attributes are not supported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of a parsed struct.
enum Shape {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple struct with this many fields.
    Tuple(usize),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Parses `[attrs] [vis] struct Name { fields } | (fields);` from the
/// derive input token stream.
fn parse_struct(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {}
        other => panic!("serde stub derives support only structs, got {other:?}"),
    }
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct name, got {other:?}"),
    };

    let shape = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Shape::Named(parse_named_fields(g.stream()))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        other => panic!("expected struct body, got {other:?}"),
    };

    Input { name, shape }
}

/// Extracts field names from the body of a brace-delimited struct.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip per-field attributes and visibility.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        match iter.next() {
            Some(TokenTree::Ident(id)) => names.push(id.to_string()),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        }
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field name, got {other:?}"),
        }
        // Consume the type: tokens until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => angle_depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    iter.next();
                    break;
                }
                None => break,
                _ => {}
            }
            iter.next();
        }
    }
    names
}

/// Counts fields in the body of a paren-delimited (tuple) struct.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle_depth = 0i32;
    let mut saw_tokens = false;
    for tt in body {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens = false;
                continue;
            }
            _ => {}
        }
        saw_tokens = true;
    }
    if saw_tokens {
        count += 1;
    }
    count
}

/// Derives `serde::Serialize` (stub).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Input { name, shape } = parse_struct(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "fields.push((\"{f}\".to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut fields: Vec<(String, ::serde::Value)> = Vec::new(); \
                 {pushes} ::serde::Value::Map(fields)"
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (stub).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Input { name, shape } = parse_struct(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::get_field(value, \"{f}\")?)?,"
                    )
                })
                .collect();
            format!("Ok({name} {{ {inits} }})")
        }
        Shape::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(value)?))"),
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| \
                         ::serde::Error::msg(\"missing tuple field {i}\"))?)?"
                    )
                })
                .collect();
            format!(
                "match value {{ \
                     ::serde::Value::Seq(items) => Ok({name}({inits})), \
                     other => Err(::serde::Error::msg(format!(\
                         \"expected array for {name}, got {{other:?}}\"))), \
                 }}",
                inits = inits.join(", ")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::core::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
