//! Offline, API-compatible subset of `serde`.
//!
//! The build environment has no access to a crates.io registry, so this
//! vendored stub provides the derive-based (de)serialization surface the
//! workspace uses. Unlike real serde there is no visitor machinery: types
//! convert to and from a JSON-like [`Value`] tree, and `serde_json` renders
//! that tree. The `#[derive(Serialize, Deserialize)]` macros are provided
//! by the sibling `serde_derive` stub.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like data tree — the intermediate representation between typed
/// values and serialized text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

/// A (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Looks up a field of an object [`Value`]; used by derived impls.
pub fn get_field<'v>(value: &'v Value, name: &str) -> Result<&'v Value, Error> {
    match value {
        Value::Map(fields) => fields
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
        other => Err(Error::msg(format!(
            "expected object with field `{name}`, got {other:?}"
        ))),
    }
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::U64(u) => *u,
                    Value::I64(i) if *i >= 0 => *i as u64,
                    other => return Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other
                    ))),
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::msg(format!(
                        concat!("value {} out of range for ", stringify!($t)), raw
                    ))
                })
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::I64(i) => *i,
                    Value::U64(u) if *u <= i64::MAX as u64 => *u as i64,
                    other => return Err(Error::msg(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other
                    ))),
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::msg(format!(
                        concat!("value {} out of range for ", stringify!($t)), raw
                    ))
                })
            }
        }
    )*};
}

serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::F64(x) => Ok(*x),
            Value::I64(i) => Ok(*i as f64),
            Value::U64(u) => Ok(*u as f64),
            other => Err(Error::msg(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
