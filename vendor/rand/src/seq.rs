//! Sequence helpers: in-place shuffling and index sampling.

use crate::RngCore;

/// Extension methods on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns one uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Returns `min(amount, len)` distinct elements in random order.
    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }

    fn choose_multiple<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&T> {
        let picked = index::sample(rng, self.len(), amount.min(self.len()));
        picked
            .into_vec()
            .into_iter()
            .map(|i| &self[i])
            .collect::<Vec<_>>()
            .into_iter()
    }
}

/// Sampling of distinct indices without replacement.
pub mod index {
    use crate::RngCore;

    /// The result of [`sample`]: `amount` distinct indices in `0..length`.
    #[derive(Debug, Clone)]
    pub struct IndexVec(Vec<usize>);

    impl IndexVec {
        /// Consumes the result into a plain vector.
        pub fn into_vec(self) -> Vec<usize> {
            self.0
        }

        /// Iterates over the sampled indices.
        pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
            self.0.iter().copied()
        }

        /// Number of sampled indices.
        pub fn len(&self) -> usize {
            self.0.len()
        }

        /// Whether no indices were sampled.
        pub fn is_empty(&self) -> bool {
            self.0.is_empty()
        }
    }

    /// Samples `amount` distinct indices from `0..length`, in random order
    /// (partial Fisher–Yates).
    ///
    /// # Panics
    ///
    /// Panics if `amount > length`.
    pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
        assert!(
            amount <= length,
            "cannot sample {amount} indices from 0..{length}"
        );
        let mut pool: Vec<usize> = (0..length).collect();
        for i in 0..amount {
            let j = i + (rng.next_u64() % (length - i) as u64) as usize;
            pool.swap(i, j);
        }
        pool.truncate(amount);
        IndexVec(pool)
    }
}

#[cfg(test)]
mod tests {
    use super::index::sample;
    use super::SliceRandom;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_yields_distinct_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let idx = sample(&mut rng, 100, 10).into_vec();
        assert_eq!(idx.len(), 10);
        let mut seen = idx.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 10);
        assert!(idx.iter().all(|&i| i < 100));
    }
}
