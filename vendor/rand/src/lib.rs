//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so this
//! vendored stub provides exactly the surface the workspace uses:
//! [`Rng`], [`SeedableRng`], [`rngs::StdRng`], [`rngs::mock::StepRng`],
//! [`seq::SliceRandom`] and [`seq::index::sample`]. The generators are
//! deterministic, seedable and of decent statistical quality (SplitMix64),
//! but are **not** cryptographically secure.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random generator that can be created from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from their full value range (or,
/// for floats, from `[0, 1)`); the stand-in for rand's `Standard`
/// distribution.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform over the type's range; `[0, 1)`
    /// for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
