//! Concrete generators: [`StdRng`] and the deterministic [`mock::StepRng`].

use crate::{RngCore, SeedableRng};

/// The workspace's standard seedable generator (SplitMix64).
///
/// Deterministic for a given seed; not cryptographically secure.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Advances the generator by `steps` draws in O(1), exactly as if
    /// [`next_u64`](crate::RngCore::next_u64) had been called `steps`
    /// times and the outputs discarded.
    ///
    /// SplitMix64 is a counter-based generator — each draw adds the
    /// golden-gamma increment to the state and finalizes a *copy* — so
    /// the stream supports random access: jumping is one multiply. This
    /// is what lets parallel table builds hand each shard a clone
    /// advanced to its range's offset while staying bit-identical to a
    /// sequential walk of the same stream.
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::{RngCore, SeedableRng};
    ///
    /// let mut walked = StdRng::seed_from_u64(7);
    /// for _ in 0..1000 {
    ///     walked.next_u64();
    /// }
    /// let mut jumped = StdRng::seed_from_u64(7);
    /// jumped.advance(1000);
    /// assert_eq!(jumped.next_u64(), walked.next_u64());
    /// ```
    pub fn advance(&mut self, steps: u64) {
        self.state = self
            .state
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(steps));
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014) — passes BigCrush when used
        // as a 64-bit stream and is trivially seedable.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-mix the seed with the SplitMix64 finalizer: without this,
        // seeds differing by the golden-gamma increment yield
        // shifted-identical streams.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        StdRng {
            state: z ^ (z >> 31),
        }
    }
}

/// Mock generators for deterministic tests.
pub mod mock {
    use crate::RngCore;

    /// A generator that yields `initial`, `initial + increment`, … — useful
    /// for making shuffles and samples fully predictable in tests.
    #[derive(Debug, Clone)]
    pub struct StepRng {
        value: u64,
        increment: u64,
    }

    impl StepRng {
        /// Creates a stepping generator starting at `initial`.
        pub fn new(initial: u64, increment: u64) -> Self {
            StepRng {
                value: initial,
                increment,
            }
        }
    }

    impl RngCore for StepRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.value;
            self.value = self.value.wrapping_add(self.increment);
            out
        }
    }
}
