//! Sampling strategies over explicit value lists.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::seq::SliceRandom;

/// Uniformly selects one of the given values.
///
/// # Panics
///
/// [`Strategy::sample_value`] panics if `values` is empty.
pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    Select { values }
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    values: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        self.values
            .choose(rng)
            .expect("select requires at least one value")
            .clone()
    }
}
