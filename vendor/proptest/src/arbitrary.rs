//! Default strategies for plain types, backing the `arg: Type` sugar in
//! [`proptest!`](crate::proptest).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (full value range for integers/bool).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
