//! Test-runner configuration and RNG plumbing for the `proptest!` macro.

/// The RNG handed to strategies.
pub type TestRng = rand::rngs::StdRng;

/// Creates the deterministic RNG for one test.
#[must_use]
pub fn new_rng(seed: u64) -> TestRng {
    <TestRng as rand::SeedableRng>::seed_from_u64(seed)
}

/// How a [`proptest!`](crate::proptest) block runs its cases.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}
