//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating random values of an associated type.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy is
/// just a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, builds a dependent strategy from it with `f`, and
    /// draws from that.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample_value(rng)).sample_value(rng)
    }
}

/// Always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (S0 0);
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
    (S0 0, S1 1, S2 2, S3 3, S4 4);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
}
