//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A length specification for [`vec()`](vec()): a fixed size or a half-open /
/// inclusive range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`](vec()).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.sample_value(rng)).collect()
    }
}
