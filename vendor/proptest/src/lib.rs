//! Offline, API-compatible subset of `proptest`.
//!
//! The build environment has no access to a crates.io registry, so this
//! vendored stub implements the property-testing surface the workspace
//! uses: the [`proptest!`] macro (both `pat in strategy` and `arg: Type`
//! argument forms), `prop_assert*` macros, the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range/tuple strategies, [`collection::vec`]
//! and [`sample::select`].
//!
//! Differences from real proptest: inputs are drawn from a deterministic
//! per-test RNG (seeded from the test name) instead of an adaptive search,
//! and there is no shrinking — a failing case panics with the values baked
//! into the assertion message.

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::Strategy;

/// FNV-1a, usable in `const` position; seeds each test's RNG from its name
/// so runs are deterministic but tests are decorrelated.
#[must_use]
pub const fn fnv1a(s: &str) -> u64 {
    let bytes = s.as_bytes();
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        i += 1;
    }
    hash
}

/// Defines property tests: each `#[test] fn name(pat in strategy, ...)`
/// item runs its body for `cases` randomly drawn inputs. Arguments may
/// also be written `name: Type`, meaning `name in any::<Type>()`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_funcs!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_funcs!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: splits a block of test fns.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_funcs {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
    )*) => {$(
        $crate::__proptest_parse!(
            [$config; [$(#[$meta])*] $name $body] [] $($args)*
        );
    )*};
}

/// Implementation detail of [`proptest!`]: a token muncher normalizing the
/// argument list into `(pattern, strategy)` pairs, then emitting the test.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_parse {
    // `pat in strategy` argument, more to come.
    ([$($ctx:tt)*] [$($acc:tt)*] $pat:pat_param in $strategy:expr, $($rest:tt)*) => {
        $crate::__proptest_parse!([$($ctx)*] [$($acc)* ($pat, $strategy)] $($rest)*);
    };
    // `pat in strategy`, final argument.
    ([$($ctx:tt)*] [$($acc:tt)*] $pat:pat_param in $strategy:expr) => {
        $crate::__proptest_parse!([$($ctx)*] [$($acc)* ($pat, $strategy)]);
    };
    // `name: Type` argument (sugar for `name in any::<Type>()`), more to come.
    ([$($ctx:tt)*] [$($acc:tt)*] $arg:ident: $ty:ty, $($rest:tt)*) => {
        $crate::__proptest_parse!(
            [$($ctx)*] [$($acc)* ($arg, $crate::arbitrary::any::<$ty>())] $($rest)*
        );
    };
    // `name: Type`, final argument.
    ([$($ctx:tt)*] [$($acc:tt)*] $arg:ident: $ty:ty) => {
        $crate::__proptest_parse!(
            [$($ctx)*] [$($acc)* ($arg, $crate::arbitrary::any::<$ty>())]
        );
    };
    // All arguments consumed: emit the test function.
    (
        [$config:expr; [$(#[$meta:meta])*] $name:ident $body:block]
        [$(($pat:pat_param, $strategy:expr))*]
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::new_rng($crate::fnv1a(concat!(
                module_path!(),
                "::",
                stringify!($name)
            )));
            for case in 0..config.cases {
                let ($($pat,)*) = (
                    $($crate::strategy::Strategy::sample_value(&($strategy), &mut rng),)*
                );
                let run = || -> ::core::result::Result<(), ::std::string::String> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                if let Err(message) = run() {
                    panic!("proptest case {case}/{} failed: {message}", config.cases);
                }
            }
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}
