//! Offline, API-compatible subset of `serde_json`: [`to_string`],
//! [`to_string_pretty`] and [`from_str`] over the vendored serde stub's
//! [`Value`] tree.

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => write_sequence(out, indent, depth, items.len(), '[', ']', |out, i| {
            write_value(out, &items[i], indent, depth + 1)
        }),
        Value::Map(fields) => {
            write_sequence(out, indent, depth, fields.len(), '{', '}', |out, i| {
                let (k, v) = &fields[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            })
        }
    }
}

fn write_sequence(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{:?}` prints the shortest representation that round-trips, and
        // always includes a `.` or exponent so the value re-parses as F64.
        out.push_str(&format!("{x:?}"));
    } else {
        // JSON has no NaN/Infinity; match serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(fields));
                }
                _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn read_hex4(&self, at: usize) -> Result<u32, Error> {
        self.bytes
            .get(at..at + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| Error::msg(format!("bad \\u escape at byte {at}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let mut code = self.read_hex4(self.pos + 1)?;
                            self.pos += 4;
                            if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a `\uXXXX` low surrogate
                                // must follow; combine the pair.
                                if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err(Error::msg(format!(
                                        "unpaired surrogate at byte {}",
                                        self.pos
                                    )));
                                }
                                let low = self.read_hex4(self.pos + 3)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::msg(format!(
                                        "invalid low surrogate at byte {}",
                                        self.pos
                                    )));
                                }
                                code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                self.pos += 6;
                            }
                            out.push(char::from_u32(code).ok_or_else(|| {
                                Error::msg(format!("bad codepoint at byte {}", self.pos))
                            })?);
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "bad escape {other:?} at byte {}",
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid utf-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error::msg(format!("bad number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::U64(3)),
            ("b".to_string(), Value::F64(2.5)),
            (
                "c".to_string(),
                Value::Seq(vec![Value::Str("x\"y\n".to_string()), Value::Bool(true)]),
            ),
            ("d".to_string(), Value::Null),
            ("e".to_string(), Value::I64(-7)),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0, -3.25e-9, 123_456_789.123_456, f64::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back, x, "via {s}");
        }
    }

    #[test]
    fn parses_surrogate_pair_escapes() {
        // U+1F600 as emitted by JSON encoders that escape non-BMP chars.
        let s: String = from_str(r#""\ud83d\ude00 ok""#).unwrap();
        assert_eq!(s, "\u{1F600} ok");
        assert!(from_str::<String>(r#""\ud83d oops""#).is_err());
        assert!(from_str::<String>(r#""\ud83dA""#).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{bad}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
