//! Offline, API-compatible subset of `criterion`.
//!
//! The build environment has no access to a crates.io registry, so this
//! vendored stub provides the benchmarking surface the workspace uses:
//! [`Criterion`], [`criterion_group!`]/[`criterion_main!`], benchmark
//! groups with throughput annotations, and [`black_box`]. Measurement is a
//! simple warmup + timed-batch loop reporting the mean and best
//! nanoseconds per iteration — adequate for spotting regressions, without
//! real criterion's statistical analysis or HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work performed per iteration, used to report element/byte throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.into(), self.sample_size, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the sample count for subsequent benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Times a closure over batches of iterations.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-sample wall-clock times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: find an iteration count that makes one
        // sample take roughly a millisecond, so Instant overhead vanishes.
        let calibration = Instant::now();
        black_box(f());
        let once = calibration.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        self.iters_per_sample = iters;
        self.samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        sample_size,
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("bench {name:<50} (no measurements)");
        return;
    }
    let per_iter = |d: &Duration| d.as_nanos() as f64 / b.iters_per_sample as f64;
    let best = b.samples.iter().map(per_iter).fold(f64::INFINITY, f64::min);
    let mean = b.samples.iter().map(per_iter).sum::<f64>() / b.samples.len() as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 * 1e9 / mean),
        Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 * 1e9 / mean),
        None => String::new(),
    };
    println!("bench {name:<50} mean {mean:>12.1} ns/iter  best {best:>12.1} ns/iter{rate}");
}

/// Declares a group of benchmark functions, optionally with a custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
